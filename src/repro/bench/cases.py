"""The built-in benchmark cases: every ``benchmarks/bench_*.py``
workload, registered declaratively.

Each case is the *whole sweep* of its source script (the pytest files
keep per-point timing via pytest-benchmark; the registered case is the
unit the trend store and the regression gate reason about).  The pytest
benchmark files read their sweep constants back through
:func:`repro.bench.registry.workload`, so the parameter lists below are
the single source of workload truth.

Correctness is asserted inside the cases exactly as the scripts do —
a benchmark that silently computes the wrong answer would poison the
trajectory with meaningless timings.

Groups:

``experiments``
    E1–E12, the paper's experiment series (one case per series).
``kernels``
    Bit-parallel kernels vs scalar loops (Monte-Carlo worlds,
    Karp–Luby, Gray-code enumeration).
``obs``
    Instrumentation overhead on the hottest polynomial path.
``runtime``
    Cost-model calibration quality and speculative racing.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction
from typing import Any, Dict, Optional

from repro import obs
from repro.bench.registry import register

# --------------------------------------------------------------------- #
# experiments group — the paper's E1..E12 series
# --------------------------------------------------------------------- #


@register(
    "experiments.e1_qf_reliability",
    group="experiments",
    params={"sizes": [4, 8, 16, 32], "density": 0.3, "error": "1/16"},
    quick={"sizes": [4, 8]},
    tags=("paper", "exact", "polynomial"),
)
def e1_qf_reliability(params: Dict[str, Any]) -> Dict[str, Any]:
    """Prop 3.1: quantifier-free reliability over growing databases."""
    from repro.logic.evaluator import FOQuery
    from repro.reliability.exact import reliability
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
    values = {}
    for size in params["sizes"]:
        db = random_unreliable_database(
            make_rng(size),
            size=size,
            relations={"E": 2, "S": 1},
            density=params["density"],
            error=params["error"],
        )
        with obs.span("bench.point", size=size):
            value = reliability(db, query, method="qf")
        assert 0 < value <= 1
        values[str(size)] = float(value)
    return {"reliability": values}


@register(
    "experiments.e2_sat_count",
    group="experiments",
    params={"variables": [6, 9, 12, 15]},
    quick={"variables": [6, 9]},
    repeats=2,
    tags=("paper", "hardness"),
)
def e2_sat_count(params: Dict[str, Any]) -> Dict[str, Any]:
    """Prop 3.2: #SAT through exact expected error (exponential)."""
    from repro.reductions.monotone2sat import (
        count_satisfying_assignments,
        sat_count_via_expected_error,
    )
    from repro.util.rng import make_rng
    from repro.workloads.random_cnf import random_monotone_2cnf

    counts = {}
    for variables in params["variables"]:
        formula = random_monotone_2cnf(
            make_rng(variables), variables=variables, clauses=variables
        )
        with obs.span("bench.point", variables=variables):
            count = sat_count_via_expected_error(formula)
        assert count == count_satisfying_assignments(formula)
        counts[str(variables)] = int(count)
    return {"sat_counts": counts}


@register(
    "experiments.e3_tree_walk",
    group="experiments",
    params={"uncertain": [4, 8, 12], "size": 4, "density": 0.4},
    quick={"uncertain": [4, 8]},
    repeats=2,
    tags=("paper", "exact"),
)
def e3_tree_walk(params: Dict[str, Any]) -> Dict[str, Any]:
    """Thm 4.2: the FP^#P computation tree, walked literally."""
    from repro.logic.evaluator import FOQuery
    from repro.relational.atoms import Atom
    from repro.reliability.exact import truth_probability
    from repro.reliability.space import scaled_world_counts, world_granularity
    from repro.reliability.unreliable import UnreliableDatabase
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_structure

    query = FOQuery("exists x y. E(x, y) & S(y)")
    checked = []
    for uncertain in params["uncertain"]:
        rng = make_rng(uncertain)
        structure = random_structure(
            rng, params["size"], {"E": 2, "S": 1}, density=params["density"]
        )
        atoms = sorted(structure.atoms(), key=repr)
        chosen = rng.sample(atoms, uncertain)
        mu = {atom: Fraction(1, rng.choice([3, 4, 5])) for atom in chosen}
        db = UnreliableDatabase(structure, mu)
        g = world_granularity(db)
        with obs.span("bench.point", uncertain=uncertain):
            accepted = 0
            total = 0
            for world, count in scaled_world_counts(db):
                total += count
                if query.evaluate(world, ()):
                    accepted += count
        assert total == g
        assert Fraction(accepted, g) == truth_probability(
            db, query, method="dnf"
        )
        checked.append(uncertain)
    return {"verified_uncertain_counts": checked}


@register(
    "experiments.e4_fptras",
    group="experiments",
    params={
        "epsilons": [0.2, 0.1, 0.05],
        "delta": 0.05,
        "variables": 12,
        "clauses": 8,
        "width": 3,
        # Swept by benchmarks/bench_e4_fptras_kdnf.py (per-point pytest
        # timings); the registered case times the epsilon sweep.
        "clause_counts": [8, 16, 32],
    },
    quick={"epsilons": [0.2, 0.1]},
    repeats=2,
    tags=("paper", "fptras"),
)
def e4_fptras(params: Dict[str, Any]) -> Dict[str, Any]:
    """Thm 5.3: Karp–Luby FPTRAS cost vs 1/epsilon at fixed size."""
    from repro.propositional.counting import probability_exact
    from repro.propositional.karp_luby import karp_luby, sample_count
    from repro.util.rng import make_rng
    from repro.workloads.random_dnf import random_kdnf, random_probabilities

    rng = make_rng(1)
    dnf = random_kdnf(
        rng,
        variables=params["variables"],
        clauses=params["clauses"],
        width=params["width"],
    )
    probs = random_probabilities(rng, dnf)
    exact = float(probability_exact(dnf, probs))
    samples = {}
    for epsilon in params["epsilons"]:
        with obs.span("bench.point", epsilon=epsilon):
            run = karp_luby(
                dnf, probs, epsilon, params["delta"], make_rng(2),
                method="coverage",
            )
        assert run.samples == sample_count(
            len(dnf.clauses), epsilon, params["delta"]
        )
        assert abs(run.estimate - exact) <= 2 * epsilon * exact
        samples[str(epsilon)] = run.samples
    return {"exact": exact, "samples_per_epsilon": samples}


@register(
    "experiments.e5_additive",
    group="experiments",
    params={
        "sizes": [4, 6, 8],
        "epsilon": 0.1,
        "delta": 0.1,
        # Swept by benchmarks/bench_e5_existential_approx.py.
        "epsilon_sweep": [0.2, 0.1, 0.05],
    },
    quick={"sizes": [4, 6]},
    repeats=1,
    tags=("paper", "additive"),
)
def e5_additive(params: Dict[str, Any]) -> Dict[str, Any]:
    """Thm 5.4 / Cor 5.5: additive reliability estimation vs size."""
    from repro.logic.evaluator import FOQuery
    from repro.reliability.approx import reliability_additive
    from repro.reliability.exact import reliability
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    query = FOQuery("exists x y. E(x, y) & S(x) & S(y)")
    errors = {}
    for size in params["sizes"]:
        db = random_unreliable_database(
            make_rng(size),
            size=size,
            relations={"E": 2, "S": 1},
            density=0.3,
            error_choices=["1/8", "1/5"],
        )
        exact = float(reliability(db, query))
        with obs.span("bench.point", size=size):
            estimate = reliability_additive(
                db, query, params["epsilon"], params["delta"],
                make_rng(1000 + size),
            )
        assert abs(estimate.value - exact) <= params["epsilon"]
        errors[str(size)] = abs(estimate.value - exact)
    return {"absolute_errors": errors}


@register(
    "experiments.e6_ar_decision",
    group="experiments",
    params={"nodes": [5, 6, 7]},
    quick={"nodes": [5]},
    repeats=2,
    tags=("paper", "hardness"),
)
def e6_ar_decision(params: Dict[str, Any]) -> Dict[str, Any]:
    """Lem 5.9: absolute reliability via the 4-colourability reduction."""
    from repro.reductions.fourcolouring import (
        four_colourable_via_absolute_reliability,
        is_four_colourable,
    )
    from repro.util.rng import make_rng
    from repro.workloads.graphs import complete_graph, random_colourable_graph

    decisions = {}
    for nodes in params["nodes"]:
        vertex_list, edges = random_colourable_graph(
            make_rng(nodes), nodes, 4, 0.7
        )
        if not edges:
            continue
        with obs.span("bench.point", nodes=nodes):
            decision = four_colourable_via_absolute_reliability(
                vertex_list, edges
            )
        assert decision == is_four_colourable(vertex_list, edges)
        decisions[str(nodes)] = bool(decision)
    vertex_list, edges = complete_graph(5)
    with obs.span("bench.point", nodes="k5"):
        assert four_colourable_via_absolute_reliability(
            vertex_list, edges
        ) is False
    return {"decisions": decisions}


@register(
    "experiments.e7_padded",
    group="experiments",
    params={
        "sizes": [5, 7, 9],
        "epsilon": 0.15,
        "delta": 0.2,
        # Swept by benchmarks/bench_e7_ptime_estimator.py (xi ablation).
        "xis": ["1/10", "1/4", "2/5"],
    },
    quick={"sizes": [5]},
    repeats=1,
    tags=("paper", "ptime"),
)
def e7_padded(params: Dict[str, Any]) -> Dict[str, Any]:
    """Thm 5.12: padded estimation of a Datalog (non-FO) query."""
    from repro.logic.datalog import reachability_query
    from repro.relational.builder import graph_structure
    from repro.reliability.padding import padded_truth_probability
    from repro.reliability.unreliable import uniform_error
    from repro.util.rng import make_rng
    from repro.workloads.graphs import random_digraph

    query = reachability_query()
    estimates = {}
    for size in params["sizes"]:
        nodes, edges = random_digraph(make_rng(size), size, 0.25)
        db = uniform_error(graph_structure(nodes, edges), Fraction(1, 10))
        with obs.span("bench.point", size=size):
            estimate = padded_truth_probability(
                db, query, params["epsilon"], params["delta"],
                make_rng(500 + size), args=(0, size - 1),
            )
        assert 0.0 <= estimate.value <= 1.0
        estimates[str(size)] = estimate.value
    return {"estimates": estimates}


@register(
    "experiments.e8_metafinite",
    group="experiments",
    params={
        "qf_sensors": [8, 16, 32],
        "agg_sensors": 6,
        "samples": 4000,
        # Swept by benchmarks/bench_e8_metafinite.py (exact aggregate).
        "agg_sizes": [4, 8, 10],
    },
    quick={"qf_sensors": [8, 16], "samples": 1000},
    tags=("paper", "metafinite"),
)
def e8_metafinite(params: Dict[str, Any]) -> Dict[str, Any]:
    """Thm 6.2: metafinite reliability — QF polynomial, aggregate 2^u."""
    from repro.metafinite.reliability import (
        estimate_metafinite_reliability,
        metafinite_reliability,
        metafinite_reliability_qf,
    )
    from repro.util.rng import make_rng
    from repro.workloads.scenarios import sensor_scenario

    qf_values = {}
    for sensors in params["qf_sensors"]:
        scenario = sensor_scenario(make_rng(sensors), sensors=sensors)
        with obs.span("bench.point", sensors=sensors, mode="qf"):
            value = metafinite_reliability_qf(
                scenario.db, scenario.queries["local"]
            )
        assert 0 < value <= 1
        qf_values[str(sensors)] = float(value)

    sensors = params["agg_sensors"]
    scenario = sensor_scenario(make_rng(sensors), sensors=sensors)
    query = scenario.queries["alarms"]
    with obs.span("bench.point", sensors=sensors, mode="aggregate"):
        exact = float(metafinite_reliability(scenario.db, query))
    estimate = estimate_metafinite_reliability(
        scenario.db, query, make_rng(7), samples=params["samples"]
    )
    assert abs(estimate - exact) <= 0.05
    return {"qf": qf_values, "aggregate_exact": exact}


@register(
    "experiments.e9_rare_unions",
    group="experiments",
    params={"widths": [6, 10, 14], "budget": 3000, "clauses": 5},
    quick={"widths": [6, 10], "budget": 1000},
    tags=("paper", "ablation"),
)
def e9_rare_unions(params: Dict[str, Any]) -> Dict[str, Any]:
    """Karp–Luby vs naive Monte-Carlo on unions of rare events."""
    from repro.propositional.counting import probability_exact
    from repro.propositional.formula import DNF, Clause, Literal
    from repro.propositional.karp_luby import (
        karp_luby_samples,
        naive_probability_estimate,
    )
    from repro.util.rng import make_rng

    relative_errors = {}
    for width in params["widths"]:
        built = []
        for index in range(params["clauses"]):
            variables = [f"v{index}_{j}" for j in range(width)]
            built.append(Clause(Literal(v, True) for v in variables))
        dnf = DNF(built)
        probs = {v: Fraction(1, 4) for v in dnf.variables}
        exact = float(probability_exact(dnf, probs))
        assert exact > 0
        with obs.span("bench.point", width=width, estimator="karp_luby"):
            run = karp_luby_samples(
                dnf, probs, params["budget"], make_rng(width)
            )
        with obs.span("bench.point", width=width, estimator="naive"):
            naive = naive_probability_estimate(
                dnf, probs, params["budget"], make_rng(width)
            )
        assert abs(run.estimate - exact) / exact <= 0.25
        relative_errors[str(width)] = {
            "karp_luby": abs(run.estimate - exact) / exact,
            "naive_zero": naive == 0.0,
        }
    return {"relative_errors": relative_errors}


@register(
    "experiments.e10_exact_vs_sampling",
    group="experiments",
    params={
        "chain_lengths": [8, 32, 128],
        "dense_variables": 15,
        "epsilon": 0.05,
        "delta": 0.05,
        # Swept by benchmarks/bench_e10_exact_vs_sampling.py.
        "dense_sizes": [15, 20, 25],
    },
    quick={"chain_lengths": [8, 32], "epsilon": 0.1, "delta": 0.1},
    repeats=1,
    tags=("paper", "ablation"),
)
def e10_exact_vs_sampling(params: Dict[str, Any]) -> Dict[str, Any]:
    """Shannon expansion vs FPTRAS: chains and the dense-overlap regime."""
    from repro.propositional.counting import probability_exact
    from repro.propositional.formula import DNF, Clause, Literal
    from repro.propositional.karp_luby import karp_luby
    from repro.util.rng import make_rng
    from repro.workloads.random_dnf import random_kdnf, random_probabilities

    for length in params["chain_lengths"]:
        clauses = []
        for index in range(length):
            variables = [f"v{index * 3 + j}" for j in range(4)]
            clauses.append(Clause(Literal(v, True) for v in variables))
        dnf = DNF(clauses)
        probs = {v: Fraction(1, 3) for v in dnf.variables}
        with obs.span("bench.point", workload="chain", length=length):
            value = probability_exact(dnf, probs)
        assert 0 < value < 1

    variables = params["dense_variables"]
    rng = make_rng(variables)
    dnf = random_kdnf(
        rng, variables=variables, clauses=int(variables * 3.2), width=4
    )
    probs = random_probabilities(rng, dnf)
    with obs.span("bench.point", workload="dense", engine="exact"):
        exact = float(probability_exact(dnf, probs))
    with obs.span("bench.point", workload="dense", engine="karp_luby"):
        run = karp_luby(
            dnf, probs, params["epsilon"], params["delta"], make_rng(1)
        )
    agreement = abs(run.estimate - exact) / exact
    assert agreement <= 2 * params["epsilon"]
    return {"dense_exact": exact, "dense_relative_error": agreement}


@register(
    "experiments.e11_lifted",
    group="experiments",
    params={"sizes": [4, 8, 16, 24], "agree_sizes": [4, 8]},
    quick={"sizes": [4, 8], "agree_sizes": [4]},
    tags=("paper", "lifted"),
)
def e11_lifted(params: Dict[str, Any]) -> Dict[str, Any]:
    """Safe-plan lifted inference vs the grounded exact engine."""
    from repro.logic.conjunctive import ConjunctiveQuery
    from repro.reliability.exact import truth_probability
    from repro.reliability.lifted import lifted_probability
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    safe = ConjunctiveQuery.from_text("exists x y. R(x) & S(x, y) & T(x)")

    def database(size):
        return random_unreliable_database(
            make_rng(size),
            size=size,
            relations={"R": 1, "S": 2, "T": 1},
            density=0.3,
            error="1/6",
        )

    values = {}
    for size in params["sizes"]:
        db = database(size)
        with obs.span("bench.point", size=size, engine="lifted"):
            value = lifted_probability(db, safe)
        assert 0 <= value <= 1
        values[str(size)] = float(value)
    for size in params["agree_sizes"]:
        db = database(size)
        with obs.span("bench.point", size=size, engine="grounded"):
            grounded = truth_probability(db, safe.to_formula(), method="dnf")
        assert grounded == lifted_probability(db, safe)
    return {"lifted_values": values}


@register(
    "experiments.e12_influence",
    group="experiments",
    params={"sizes": [3, 4, 5], "density": 0.4},
    quick={"sizes": [3, 4]},
    repeats=2,
    tags=("paper", "ablation"),
)
def e12_influence(params: Dict[str, Any]) -> Dict[str, Any]:
    """Birnbaum influence: conditioning engine vs compiled ROBDD."""
    from repro.reliability.influence import atom_influence
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    sentence = "exists x y. E(x, y) & S(x) & S(y)"
    agreed = []
    for size in params["sizes"]:
        db = random_unreliable_database(
            make_rng(size),
            size=size,
            relations={"E": 2, "S": 1},
            density=params["density"],
            error_choices=["1/6", "1/4"],
            uncertain_fraction=1.0,
        )
        with obs.span("bench.point", size=size, engine="conditioning"):
            conditioning = atom_influence(db, sentence, engine="conditioning")
        with obs.span("bench.point", size=size, engine="bdd"):
            bdd = atom_influence(db, sentence, engine="bdd")
        assert conditioning == bdd and conditioning
        agreed.append(size)
    return {"agreed_sizes": agreed}


# --------------------------------------------------------------------- #
# kernels group — bit-parallel vs scalar
# --------------------------------------------------------------------- #


@register(
    "kernels.mc_truth",
    group="kernels",
    params={"size": 24, "samples": 30000},
    quick={"size": 12, "samples": 5000},
    repeats=2,
    tags=("kernels",),
)
def kernels_mc_truth(params: Dict[str, Any]) -> Dict[str, Any]:
    """Monte-Carlo truth probability: batched worlds vs the scalar loop."""
    from repro.kernels import clear_caches
    from repro.logic.evaluator import FOQuery
    from repro.reliability.montecarlo import estimate_truth_probability
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    clear_caches()
    query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
    size = params["size"]
    db = random_unreliable_database(
        make_rng(size), size, {"E": 2, "S": 1}, density=0.3, error="1/16"
    )
    args = (min(3, size - 1), min(17, size - 1))

    def run(kernel):
        return estimate_truth_probability(
            db, query, make_rng(7), samples=params["samples"],
            args=args, kernel=kernel,
        )

    with obs.span("bench.point", kernel="scalar"):
        start = time.perf_counter()
        scalar_value = run("scalar")
        scalar_s = time.perf_counter() - start
    with obs.span("bench.point", kernel="batched"):
        start = time.perf_counter()
        batched_value = run("batched")
        batched_s = time.perf_counter() - start
    return {
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup_batched": round(scalar_s / batched_s, 2),
        "scalar_estimate": scalar_value,
        "batched_estimate": batched_value,
    }


@register(
    "kernels.karp_luby",
    group="kernels",
    params={"width": 8, "clauses": 4, "samples": 20000},
    quick={"samples": 5000},
    repeats=2,
    tags=("kernels",),
)
def kernels_karp_luby(params: Dict[str, Any]) -> Dict[str, Any]:
    """Karp–Luby cover sampling: batched vs scalar on rare unions."""
    from repro.kernels import clear_caches
    from repro.propositional.formula import DNF, Clause, Literal
    from repro.propositional.karp_luby import karp_luby_samples
    from repro.util.rng import make_rng

    clear_caches()
    built = []
    for index in range(params["clauses"]):
        variables = [f"v{index}_{j}" for j in range(params["width"])]
        built.append(Clause(Literal(v, True) for v in variables))
    dnf = DNF(built)
    probs = {v: Fraction(1, 4) for v in dnf.variables}

    def run(kernel):
        return karp_luby_samples(
            dnf, probs, params["samples"], make_rng(11), kernel=kernel
        ).estimate

    with obs.span("bench.point", kernel="scalar"):
        start = time.perf_counter()
        scalar_value = run("scalar")
        scalar_s = time.perf_counter() - start
    with obs.span("bench.point", kernel="batched"):
        start = time.perf_counter()
        batched_value = run("batched")
        batched_s = time.perf_counter() - start
    return {
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup_batched": round(scalar_s / batched_s, 2),
        "scalar_estimate": scalar_value,
        "batched_estimate": batched_value,
    }


@register(
    "kernels.gray_enumeration",
    group="kernels",
    params={"atoms": 16},
    quick={"atoms": 10},
    repeats=2,
    tags=("kernels", "exact"),
)
def kernels_gray(params: Dict[str, Any]) -> Dict[str, Any]:
    """Gray-code exact enumeration vs the itertools.product sweep."""
    from repro.kernels.gray import (
        gray_enumeration_probability,
        product_enumeration_probability,
    )
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    atom_count = params["atoms"]
    db = random_unreliable_database(
        make_rng(atom_count), atom_count, {"S": 1}, density=0.5, error="1/8"
    )
    atoms = sorted(db.uncertain_atoms(), key=repr)[:atom_count]
    target = atoms[0]
    predicate = lambda world: world.holds(target)

    with obs.span("bench.point", sweep="product"):
        start = time.perf_counter()
        product_value = product_enumeration_probability(db, atoms, predicate)
        product_s = time.perf_counter() - start
    with obs.span("bench.point", sweep="gray"):
        start = time.perf_counter()
        gray_value = gray_enumeration_probability(db, atoms, predicate)
        gray_s = time.perf_counter() - start
    assert gray_value == product_value  # exact rationals, bit-identical
    return {
        "product_s": round(product_s, 6),
        "gray_s": round(gray_s, 6),
        "speedup_gray": round(product_s / gray_s, 2),
        "bit_identical": True,
    }


# --------------------------------------------------------------------- #
# obs group — instrumentation overhead
# --------------------------------------------------------------------- #


@register(
    "obs.overhead",
    group="obs",
    params={"size": 24, "repeats": 3},
    quick={"size": 12, "repeats": 2},
    repeats=1,
    tags=("obs",),
)
def obs_overhead(params: Dict[str, Any]) -> Dict[str, Any]:
    """Recorder overhead on E1 qf reliability: null vs stats vs traced."""
    from repro.logic.evaluator import FOQuery
    from repro.reliability.exact import reliability
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
    size = params["size"]
    db = random_unreliable_database(
        make_rng(size), size, {"E": 2, "S": 1}, density=0.3, error="1/16"
    )
    run = lambda: reliability(db, query, method="qf")

    devnull = open(os.devnull, "w")
    try:
        recorders = {
            "null": obs.NullRecorder(),
            "stats": obs.StatsRecorder(),
            "traced": obs.StatsRecorder(sink=obs.JsonlSink(devnull)),
        }
        times = {name: [] for name in recorders}
        for recorder in recorders.values():  # warm-up
            with obs.use(recorder):
                run()
        for _ in range(params["repeats"]):
            for name, recorder in recorders.items():
                with obs.use(recorder):
                    start = time.perf_counter()
                    run()
                    times[name].append(time.perf_counter() - start)
    finally:
        devnull.close()

    null_s = min(times["null"])
    stats_s = min(times["stats"])
    traced_s = min(times["traced"])
    pct = lambda measured: round(100.0 * (measured - null_s) / null_s, 3)
    return {
        "null_recorder_s": round(null_s, 6),
        "stats_recorder_s": round(stats_s, 6),
        "traced_recorder_s": round(traced_s, 6),
        "overhead_pct": {
            "stats_vs_null": pct(stats_s),
            "traced_vs_null": pct(traced_s),
        },
    }


# --------------------------------------------------------------------- #
# runtime group — cost model and racing
# --------------------------------------------------------------------- #


@register(
    "runtime.costmodel",
    group="runtime",
    params={"cases": 4, "epsilon": 0.2, "delta": 0.2, "fit_repeats": 1},
    quick={"cases": 2},
    repeats=1,
    tags=("runtime",),
)
def runtime_costmodel(params: Dict[str, Any]) -> Dict[str, Any]:
    """Cost-model calibration: fit, then analyze/run agreement."""
    from repro.kernels import clear_caches
    from repro.logic.evaluator import FOQuery
    from repro.runtime.budget import Budget
    from repro.runtime.costmodel import calibrate, plan_chain
    from repro.runtime.executor import run_with_fallback
    from repro.util.errors import FallbackExhausted
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    clear_caches()
    with obs.span("bench.point", phase="calibrate"):
        model = calibrate(seed=0, repeats=params["fit_repeats"])
    assert model.engines

    queries = [
        ("exists x. S(x) | (exists y. E(x, y) & S(y))", []),
        ("exists x. exists y. E(x, y) & S(y) | exists x. S(x)", []),
    ]
    budget_atoms = 16
    agreed = 0
    for index in range(params["cases"]):
        db = random_unreliable_database(
            make_rng(500 + index), size=6, relations={"E": 2, "S": 1},
            density=0.6, uncertain_fraction=1.0,
        )
        text, free = queries[index % len(queries)]
        query = FOQuery(text, free)
        kwargs = dict(
            budget=Budget(max_atoms=budget_atoms),
            epsilon=params["epsilon"],
            delta=params["delta"],
            cost_model=model,
        )
        with obs.span("bench.point", phase="evaluate", case=index):
            plan = plan_chain(db, query, **kwargs)
            try:
                result = run_with_fallback(db, query, rng=index, **kwargs)
                selected = result.engine
            except FallbackExhausted:
                selected = None
        agreed += plan.selected == selected
    agreement = agreed / params["cases"]
    assert agreement == 1.0
    return {
        "calibrated_engines": sorted(model.engines),
        "analyze_run_agreement": agreement,
    }


@register(
    "runtime.racing",
    group="runtime",
    params={"stall": 0.4, "overlap": 0.1, "size": 4},
    quick={"stall": 0.3},
    repeats=1,
    warmup=0,
    tags=("runtime", "threads"),
)
def runtime_racing(params: Dict[str, Any]) -> Dict[str, Any]:
    """Speculative racing vs the sequential walk on a stalled engine."""
    from repro.kernels import clear_caches
    from repro.logic.evaluator import FOQuery
    from repro.runtime import faults
    from repro.runtime.executor import run_with_fallback
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    query = FOQuery("exists x. exists y. E(x, y) & S(y)")
    db = random_unreliable_database(
        make_rng(900), size=params["size"], relations={"E": 2, "S": 1},
        density=0.4,
    )

    def arm(race):
        clear_caches()
        start = time.perf_counter()
        with faults.inject(
            {"exact": faults.SlowdownFault(seconds=params["stall"])}
        ):
            result = run_with_fallback(db, query, rng=0, race=race)
        return time.perf_counter() - start, result

    with obs.span("bench.point", arm="sequential"):
        sequential_s, sequential = arm(False)
    with obs.span("bench.point", arm="racing"):
        racing_s, racing = arm(params["overlap"])
    assert sequential.guarantee == racing.guarantee
    assert sequential.value == racing.value
    assert racing_s < sequential_s
    return {
        "sequential_s": round(sequential_s, 6),
        "racing_s": round(racing_s, 6),
        "speedup": round(sequential_s / racing_s, 2),
        "answers_agree": True,
    }


@register(
    "runtime.serve",
    group="runtime",
    params={"requests": 24, "pool": 3, "queue": 6, "size": 4},
    quick={"requests": 12},
    repeats=1,
    warmup=0,
    tags=("runtime", "serve", "threads"),
)
def runtime_serve(params: Dict[str, Any]) -> Dict[str, Any]:
    """Serving throughput of the multi-query scheduler on real threads.

    A mixed multi-tenant batch (staggered arrivals, tight and loose
    deadlines, one hopeless cost cap) drained through one
    :class:`repro.serve.Server` over the thread-pool scheduler.  The
    case asserts the accounting invariant before reporting wall-clock
    throughput, so a scheduling bug can never be mistaken for a
    performance regression.
    """
    from repro.kernels import clear_caches
    from repro.serve import ServeRequest, Server
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    clear_caches()
    db = random_unreliable_database(
        make_rng(910), size=params["size"], relations={"E": 2, "S": 1},
        density=0.4,
    )
    query = "exists x. exists y. E(x, y) & S(y)"
    requests = []
    for index in range(params["requests"]):
        kwargs = dict(
            id=f"q{index:02d}",
            query=query if index % 3 else "exists x. S(x)",
            tenant=("alpha", "beta", "gamma")[index % 3],
            seed=index,
            arrival=0.001 * index,
            epsilon=0.3,
            delta=0.3,
            deadline=30.0,
        )
        if index % 8 == 5:
            kwargs.update(chain=("exact",), max_cost=2, deadline=None)
        requests.append(ServeRequest(**kwargs))

    server = Server(
        db, pool_size=params["pool"], queue_capacity=params["queue"]
    )
    start = time.perf_counter()
    with obs.span("bench.point", arm="serve"):
        responses = server.run(requests)
    elapsed = time.perf_counter() - start

    counters = obs.summary(prefix="serve.")["counters"] if obs.enabled() else {}
    ok = sum(1 for response in responses if response.ok)
    refused = sum(1 for response in responses if not response.ok)
    assert len(responses) == params["requests"]
    assert ok + refused == params["requests"]
    if counters:
        assert counters["serve.submitted"] == (
            counters.get("serve.admitted", 0)
            + counters.get("serve.rejected", 0)
            + counters.get("serve.shed", 0)
        )
    return {
        "serve_s": round(elapsed, 6),
        "requests_per_s": round(params["requests"] / elapsed, 2),
        "ok": ok,
        "not_ok": refused,
    }


@register(
    "runtime.delta",
    group="runtime",
    params={"pairs": 9, "spectators": 22, "updates": 40, "min_speedup": 50.0},
    quick={"pairs": 5, "spectators": 6, "updates": 10, "min_speedup": 2.0},
    repeats=1,
    tags=("runtime", "delta", "exact"),
)
def runtime_delta(params: Dict[str, Any]) -> Dict[str, Any]:
    """Delta update stream vs m cold recomputes, bit-identical answers.

    A self-join query over ``pairs`` uncertain 2-cycles (k = 2*pairs
    uncertain atoms, forcing the DNF/grounding path) takes a stream of
    single-atom ``set_mu`` updates.  The delta arm propagates each
    change through only the affected diagram nodes; the cold arm
    regrounds all ``n^2`` clause instantiations and recompiles from
    scratch at every step — ``spectators`` pads the universe with
    untouched elements exactly the way a real database surrounds the
    updated tuples, which the cold arm must reground and the delta arm
    never looks at.  Every pair of answers is compared with ``==`` on
    exact Fractions before any timing is reported — the speedup of a
    wrong answer is meaningless.
    """
    from repro.delta import DeltaSession
    from repro.kernels import clear_caches
    from repro.relational.atoms import Atom
    from repro.relational.builder import StructureBuilder
    from repro.reliability.exact import truth_probability
    from repro.reliability.unreliable import UnreliableDatabase

    clear_caches()
    pairs = params["pairs"]
    builder = StructureBuilder(range(2 * pairs + params["spectators"]))
    builder.relation("E", 2)
    atoms = []
    mu = {}
    for index in range(pairs):
        a, b = 2 * index, 2 * index + 1
        for pair in ((a, b), (b, a)):
            builder.add("E", pair)
            atom = Atom("E", pair)
            atoms.append(atom)
            mu[atom] = Fraction(1 + index % 5, 8)
    db = UnreliableDatabase(builder.build(), mu)
    query = "exists x y. E(x, y) & E(y, x)"

    updates = [
        (atoms[i % len(atoms)], Fraction(1 + (i * 3) % 6, 8))
        for i in range(params["updates"])
    ]

    with obs.span("bench.point", arm="delta", k=len(atoms)):
        session = DeltaSession(db, query)
        start = time.perf_counter()
        delta_answers = []
        for atom, probability in updates:
            session.set_mu(atom, probability)
            delta_answers.append(session.probability())
        delta_s = time.perf_counter() - start

    with obs.span("bench.point", arm="cold", k=len(atoms)):
        current = db
        start = time.perf_counter()
        cold_answers = []
        for atom, probability in updates:
            current = current.with_errors({atom: probability})
            cold_answers.append(
                truth_probability(current, query, method="dnf")
            )
        cold_s = time.perf_counter() - start

    assert delta_answers == cold_answers  # bit-identical Fractions
    speedup = cold_s / delta_s if delta_s > 0 else float("inf")
    assert speedup >= params["min_speedup"]
    return {
        "uncertain_atoms": len(atoms),
        "updates": len(updates),
        "delta_s": round(delta_s, 6),
        "cold_s": round(cold_s, 6),
        "speedup_delta": round(speedup, 2),
        "bit_identical": True,
    }


@register(
    "kernels.cache_persist",
    group="kernels",
    params={"size": 10, "repeats": 3},
    quick={"size": 6, "repeats": 2},
    repeats=1,
    tags=("kernels", "cache"),
)
def kernels_cache_persist(params: Dict[str, Any]) -> Dict[str, Any]:
    """Warm start from the disk tier: second process recompiles nothing.

    One compilation-heavy query runs twice against a shared cache
    directory, with the in-memory tier wiped between passes (a stand-in
    for a fresh interpreter).  The warm pass must report persist hits
    and **zero** compile misses — the invariant the CI warm-start lane
    asserts across real subprocesses — and both passes must agree bit
    for bit.
    """
    import shutil
    import tempfile

    from repro.kernels import cache_persist, clear_caches
    from repro.relational.atoms import Atom
    from repro.relational.builder import StructureBuilder
    from repro.reliability.exact import truth_probability
    from repro.reliability.unreliable import UnreliableDatabase

    size = params["size"]
    builder = StructureBuilder(range(size))
    builder.relation("E", 2)
    mu = {}
    for index in range(size):
        for pair in ((index, (index + 1) % size), ((index + 1) % size, index)):
            builder.add("E", pair)
            mu[Atom("E", pair)] = Fraction(1 + index % 3, 8)
    db = UnreliableDatabase(builder.build(), mu)
    query = "exists x y. E(x, y) & E(y, x)"

    directory = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache_persist.configure(directory)

        def one_pass(arm):
            clear_caches()  # a "new process": empty memory, same disk
            recorder = obs.StatsRecorder()
            with obs.use(recorder):
                with obs.span("bench.point", arm=arm):
                    start = time.perf_counter()
                    for _ in range(params["repeats"]):
                        value = truth_probability(db, query, method="dnf")
                    elapsed = time.perf_counter() - start
            return value, elapsed, recorder.summary()["counters"]

        cold_value, cold_s, cold_counters = one_pass("cold")
        warm_value, warm_s, warm_counters = one_pass("warm")
    finally:
        cache_persist.deactivate()
        clear_caches()
        shutil.rmtree(directory, ignore_errors=True)

    assert cold_value == warm_value  # bit-identical through the pickle
    assert cold_counters.get("kernels.cache.persist.stores", 0) > 0
    assert warm_counters.get("kernels.cache.persist.hits", 0) > 0
    assert warm_counters.get("kernels.cache.misses", 0) == 0  # no recompiles
    return {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "warm_persist_hits": warm_counters["kernels.cache.persist.hits"],
        "warm_compile_misses": 0,
        "bit_identical": True,
    }


@register(
    "runtime.safe_router",
    group="runtime",
    params={"sizes": [3, 4, 6, 9, 12], "brute_sizes": [3], "error": "1/6"},
    quick={"sizes": [3, 4, 6], "brute_sizes": [3]},
    repeats=1,
    warmup=0,
    tags=("runtime", "dichotomy", "polynomial"),
)
def runtime_safe_router(params: Dict[str, Any]) -> Dict[str, Any]:
    """Dichotomy routing: the safe family sweep, polynomial vs brute force.

    A hierarchical CQ runs through the default chain over growing
    databases: the static router answers every size in the polynomial
    ``safe_lifted`` tier (the sweep reaches sizes whose uncertain-atom
    count makes ``2^m`` world enumeration unthinkable).  On the small
    sizes the same reliabilities are recomputed by brute-force world
    enumeration — the exponential baseline the routing avoids — and the
    two must agree to the exact ``Fraction``.
    """
    from repro.logic.evaluator import FOQuery
    from repro.reliability.exact import truth_probability
    from repro.runtime.executor import run_with_fallback
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database

    query = FOQuery("exists x. exists y. E(x, y) & S(y)")
    routed_s: Dict[int, float] = {}
    routed_values: Dict[int, Fraction] = {}
    atoms: Dict[int, int] = {}
    databases = {
        size: random_unreliable_database(
            make_rng(920 + size),
            size=size,
            relations={"E": 2, "S": 1},
            density=0.5,
            error=params["error"],
        )
        for size in params["sizes"]
    }
    for size, db in databases.items():
        atoms[size] = len(db.uncertain_atoms())
        with obs.span("bench.point", arm="routed", size=size):
            start = time.perf_counter()
            result = run_with_fallback(db, query, quantity="reliability")
            routed_s[size] = time.perf_counter() - start
        assert result.engine == "safe_lifted"
        assert result.fraction is not None  # exact, not an estimate
        routed_values[size] = result.fraction

    brute_s: Dict[int, float] = {}
    for size in params["brute_sizes"]:
        db = databases[size]
        with obs.span("bench.point", arm="brute", size=size):
            start = time.perf_counter()
            holds_probability = truth_probability(
                db, "exists x. exists y. E(x, y) & S(y)", method="worlds"
            )
            brute_s[size] = time.perf_counter() - start
        # reliability = Pr[world agrees with the observed answer]
        holds = query.evaluate(db.structure, ())
        expected = holds_probability if holds else 1 - holds_probability
        assert routed_values[size] == expected, size
    largest = max(params["sizes"])
    smallest = min(params["sizes"])
    shared = max(params["brute_sizes"])
    return {
        "max_uncertain_atoms": atoms[largest],
        "routed_small_s": round(routed_s[smallest], 6),
        "routed_large_s": round(routed_s[largest], 6),
        "routed_growth": round(
            routed_s[largest] / max(routed_s[smallest], 1e-9), 2
        ),
        "brute_shared_s": round(brute_s[shared], 6),
        "routed_vs_brute": round(
            brute_s[shared] / max(routed_s[shared], 1e-9), 2
        ),
        "bit_identical": True,
    }

@register(
    "runtime.adaptive",
    group="runtime",
    params={
        "mc_size": 16,
        "mc_epsilon": 0.02,
        "kl_epsilon": 0.1,
        "delta": 0.05,
        "variables": 12,
        "clauses": 8,
        "width": 3,
        "repeats": 2,
    },
    quick={"mc_size": 12, "repeats": 1},
    repeats=1,
    tags=("runtime", "adaptive", "fptras"),
)
def runtime_adaptive(params: Dict[str, Any]) -> Dict[str, Any]:
    """Adaptive EB stopping vs fixed budgets on the E1 and E4 workloads.

    Two arms per workload, interleaved like ``obs.overhead`` (warm-up
    pass, then min-of-repeats): the fixed worst-case budget and the
    sequential empirical-Bernstein stopper at the *same* (epsilon,
    delta) guarantee.  The case asserts the headline claim — at least
    half the worst-case sample budget comes back unspent on both the
    additive (Hamming Monte Carlo) and relative (Karp–Luby) paths —
    and that both arms' answers stay within guarantee of the exact
    value, so a stopping-rule bug can never read as a speedup.
    """
    from repro.kernels import clear_caches
    from repro.logic.evaluator import FOQuery
    from repro.propositional.counting import probability_exact
    from repro.propositional.karp_luby import karp_luby, sample_count
    from repro.reliability.exact import reliability
    from repro.reliability.montecarlo import estimate_reliability_hamming
    from repro.runtime.adaptive import CostSurrogate, use_surrogate
    from repro.util.rng import make_rng
    from repro.workloads.random_db import random_unreliable_database
    from repro.workloads.random_dnf import random_kdnf, random_probabilities

    clear_caches()
    delta = params["delta"]

    # E1 workload: k-ary reliability by Hamming sampling (additive).
    size = params["mc_size"]
    mc_epsilon = params["mc_epsilon"]
    query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
    db = random_unreliable_database(
        make_rng(size), size=size, relations={"E": 2, "S": 1},
        density=0.3, error="1/16",
    )
    mc_exact = float(reliability(db, query, method="qf"))

    def mc_arm(adaptive):
        with obs.recording() as rec:
            value = estimate_reliability_hamming(
                db, query, make_rng(7), mc_epsilon, delta,
                adaptive=adaptive,
            )
        counters = rec.summary()["counters"]
        return value, counters

    # E4 workload: DNF probability by Karp-Luby (relative).
    kl_epsilon = params["kl_epsilon"]
    rng = make_rng(1)
    dnf = random_kdnf(
        rng,
        variables=params["variables"],
        clauses=params["clauses"],
        width=params["width"],
    )
    probs = random_probabilities(rng, dnf)
    kl_exact = float(probability_exact(dnf, probs))
    kl_worst = sample_count(len(dnf.clauses), kl_epsilon, delta)

    def kl_arm(adaptive):
        run = karp_luby(
            dnf, probs, kl_epsilon, delta, make_rng(2),
            method="coverage", adaptive=adaptive,
        )
        return run

    arms = {
        "mc_fixed": lambda: mc_arm(False),
        "mc_adaptive": lambda: mc_arm(True),
        "kl_fixed": lambda: kl_arm(False),
        "kl_adaptive": lambda: kl_arm(True),
    }
    times = {name: [] for name in arms}
    results = {}
    with use_surrogate(CostSurrogate()):
        for name, arm in arms.items():  # warm-up
            arm()
        for _ in range(params["repeats"]):
            for name, arm in arms.items():
                with obs.span("bench.point", arm=name):
                    start = time.perf_counter()
                    results[name] = arm()
                    times[name].append(time.perf_counter() - start)

    mc_fixed_value, _ = results["mc_fixed"]
    mc_adaptive_value, mc_counters = results["mc_adaptive"]
    mc_drawn = mc_counters["adaptive.samples_drawn"]
    mc_saved = mc_counters["adaptive.samples_saved"]
    mc_worst = mc_drawn + mc_saved
    assert abs(mc_fixed_value - mc_exact) <= mc_epsilon
    assert abs(mc_adaptive_value - mc_exact) <= mc_epsilon
    assert mc_saved / mc_worst >= 0.5, (mc_drawn, mc_worst)

    kl_fixed = results["kl_fixed"]
    kl_adaptive = results["kl_adaptive"]
    assert kl_fixed.samples == kl_worst
    assert abs(kl_fixed.estimate - kl_exact) <= 2 * kl_epsilon * kl_exact
    assert abs(kl_adaptive.estimate - kl_exact) <= 2 * kl_epsilon * kl_exact
    kl_saved = kl_worst - kl_adaptive.samples
    assert kl_saved / kl_worst >= 0.5, (kl_adaptive.samples, kl_worst)

    fraction = lambda saved, worst: round(saved / worst, 4)
    return {
        "mc": {
            "worst_samples": mc_worst,
            "adaptive_samples": mc_drawn,
            "saved_fraction": fraction(mc_saved, mc_worst),
            "fixed_s": round(min(times["mc_fixed"]), 6),
            "adaptive_s": round(min(times["mc_adaptive"]), 6),
            "fixed_error": round(abs(mc_fixed_value - mc_exact), 6),
            "adaptive_error": round(abs(mc_adaptive_value - mc_exact), 6),
        },
        "kl": {
            "worst_samples": kl_worst,
            "adaptive_samples": kl_adaptive.samples,
            "saved_fraction": fraction(kl_saved, kl_worst),
            "fixed_s": round(min(times["kl_fixed"]), 6),
            "adaptive_s": round(min(times["kl_adaptive"]), 6),
            "fixed_rel_error": round(
                abs(kl_fixed.estimate - kl_exact) / kl_exact, 6
            ),
            "adaptive_rel_error": round(
                abs(kl_adaptive.estimate - kl_exact) / kl_exact, 6
            ),
        },
        "within_guarantee": True,
    }
