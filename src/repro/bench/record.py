"""The schema-versioned benchmark record: one run, one ``BenchResult``.

Every benchmark execution — a registered case run by
:mod:`repro.bench.runner`, a converted legacy ``BENCH_*.json`` file, or
an ``benchmarks/run_experiments.py`` experiment — produces one record
with the same shape, identified by :data:`SCHEMA_VERSION`:

``schema_version``
    Integer.  Consumers reject versions they do not know;
    :func:`migrate` upgrades older shapes as the schema evolves.
``bench``
    Dotted benchmark id, ``<group>.<name>`` (e.g.
    ``kernels.mc_batched``, ``experiments.e1_qf_polytime``).
``workload``
    The declared workload parameters (sizes, sample counts, epsilons
    ...).  ``workload_key`` is a stable digest of this dict — trend
    queries and the regression gate only compare records with equal
    keys, so changing a workload resets its trajectory instead of
    producing bogus regressions.
``environment``
    Fingerprint of where the run happened (Python, platform, CPU
    count); informational, never part of the comparison key.
``methodology``
    How the wall-clock numbers were produced: repeats, warmup runs,
    timer, and the reduction (median/min) applied.
``wall_clock``
    ``seconds`` (the reduced headline number) plus min/max/mean/stdev
    and the raw per-repeat samples.
``metrics``
    The run's :func:`repro.obs.summary` snapshot — engine-internal
    counters, gauges and histograms.
``profile``
    The span-tree profile (:meth:`repro.obs.profile.SpanProfile.to_dict`):
    per-phase count/total/self times.
``extra``
    Benchmark-specific payload (speedups, estimates, agreement flags).
``created_at`` / ``source``
    ISO-8601 UTC timestamp and provenance (``runner``, ``experiment``,
    ``legacy-convert``).

Records travel as JSON objects, one per line, in the append-only
trajectory store (:mod:`repro.bench.history`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import statistics
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

SCHEMA_VERSION = 1

#: Fields every record must carry.
REQUIRED_FIELDS = (
    "schema_version",
    "bench",
    "group",
    "workload",
    "workload_key",
    "environment",
    "methodology",
    "wall_clock",
    "metrics",
    "profile",
    "extra",
    "created_at",
    "source",
)


class SchemaError(ValueError):
    """A record does not conform to the benchmark result schema."""


def workload_key(workload: Dict[str, Any]) -> str:
    """A stable short digest of the workload parameters.

    Canonical JSON (sorted keys, default=str for Fractions and friends)
    hashed to 12 hex characters: enough to distinguish workloads, short
    enough to read in a table.
    """
    canonical = json.dumps(workload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def environment_fingerprint() -> Dict[str, Any]:
    """Where this run happened — informational context for a record."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else None,
    }


def wall_clock_stats(samples: Sequence[float], reduce: str = "median") -> Dict[str, Any]:
    """The wall-clock block from raw per-repeat timings."""
    if not samples:
        raise SchemaError("wall_clock requires at least one timing sample")
    values = [float(value) for value in samples]
    if reduce == "median":
        headline = statistics.median(values)
    elif reduce == "min":
        headline = min(values)
    elif reduce == "mean":
        headline = statistics.fmean(values)
    else:
        raise SchemaError(f"unknown wall_clock reduction {reduce!r}")
    return {
        "seconds": round(headline, 9),
        "min": round(min(values), 9),
        "max": round(max(values), 9),
        "mean": round(statistics.fmean(values), 9),
        "stdev": round(statistics.stdev(values), 9) if len(values) > 1 else 0.0,
        "samples": [round(value, 9) for value in values],
    }


def _utc_now_iso() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclasses.dataclass
class BenchResult:
    """One benchmark run in the versioned schema (see module docstring)."""

    bench: str
    group: str
    workload: Dict[str, Any]
    environment: Dict[str, Any]
    methodology: Dict[str, Any]
    wall_clock: Dict[str, Any]
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    profile: Dict[str, Any] = dataclasses.field(default_factory=dict)
    extra: Dict[str, Any] = dataclasses.field(default_factory=dict)
    created_at: str = dataclasses.field(default_factory=_utc_now_iso)
    source: str = "runner"
    schema_version: int = SCHEMA_VERSION
    workload_key: str = ""

    def __post_init__(self) -> None:
        if not self.workload_key:
            self.workload_key = workload_key(self.workload)

    @property
    def seconds(self) -> float:
        return float(self.wall_clock["seconds"])

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "schema_version": self.schema_version,
            "bench": self.bench,
            "group": self.group,
            "workload": _jsonable(self.workload),
            "workload_key": self.workload_key,
            "environment": _jsonable(self.environment),
            "methodology": _jsonable(self.methodology),
            "wall_clock": _jsonable(self.wall_clock),
            "metrics": _jsonable(self.metrics),
            "profile": _jsonable(self.profile),
            "extra": _jsonable(self.extra),
            "created_at": self.created_at,
            "source": self.source,
        }
        validate(record)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "BenchResult":
        record = migrate(record)
        validate(record)
        return cls(
            bench=record["bench"],
            group=record["group"],
            workload=record["workload"],
            environment=record["environment"],
            methodology=record["methodology"],
            wall_clock=record["wall_clock"],
            metrics=record["metrics"],
            profile=record["profile"],
            extra=record["extra"],
            created_at=record["created_at"],
            source=record["source"],
            schema_version=record["schema_version"],
            workload_key=record["workload_key"],
        )


def _jsonable(value: Any) -> Any:
    """Coerce a nested structure to JSON-safe types (Fractions → str)."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def validate(record: Dict[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``record`` is a valid v1 record."""
    if not isinstance(record, dict):
        raise SchemaError(f"record must be a dict, got {type(record).__name__}")
    missing = [field for field in REQUIRED_FIELDS if field not in record]
    if missing:
        raise SchemaError(f"record missing fields: {', '.join(missing)}")
    version = record["schema_version"]
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} "
            f"(this build understands {SCHEMA_VERSION}); run migrate()"
        )
    if not isinstance(record["bench"], str) or "." not in record["bench"]:
        raise SchemaError(
            f"bench id must be a dotted '<group>.<name>' string, "
            f"got {record['bench']!r}"
        )
    for field in ("workload", "environment", "methodology", "wall_clock",
                  "metrics", "profile", "extra"):
        if not isinstance(record[field], dict):
            raise SchemaError(f"{field} must be a dict")
    wall = record["wall_clock"]
    if "seconds" not in wall:
        raise SchemaError("wall_clock must carry 'seconds'")
    seconds = wall["seconds"]
    if not isinstance(seconds, (int, float)) or seconds < 0:
        raise SchemaError(f"wall_clock.seconds must be >= 0, got {seconds!r}")
    if record["workload_key"] != workload_key(record["workload"]):
        raise SchemaError(
            "workload_key does not match the workload dict "
            f"(expected {workload_key(record['workload'])}, "
            f"found {record['workload_key']})"
        )


def migrate(record: Dict[str, Any]) -> Dict[str, Any]:
    """Upgrade an older record to the current schema version.

    Version 1 is the first schema, so today this only normalises a
    missing ``workload_key`` (recomputed from the workload) and rejects
    versions from the future.  Later schema bumps add their upgrade
    steps here, keeping every historical trajectory readable.
    """
    if not isinstance(record, dict):
        raise SchemaError(f"record must be a dict, got {type(record).__name__}")
    version = record.get("schema_version")
    if version is None:
        raise SchemaError("record has no schema_version")
    if not isinstance(version, int) or version < 1:
        raise SchemaError(f"bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"record schema_version {version} is newer than this build "
            f"understands ({SCHEMA_VERSION})"
        )
    if record.get("workload_key", "") == "" and isinstance(
        record.get("workload"), dict
    ):
        record = dict(record)
        record["workload_key"] = workload_key(record["workload"])
    return record
