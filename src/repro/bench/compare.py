"""Trend-based regression detection with robust relative bands.

The old CI gates hardcoded a threshold per benchmark ("batched must
clear 2x scalar") — brittle, machine-dependent, and silent about
drift.  This module replaces them: a fresh run is compared against the
*recorded trajectory* of the same benchmark and workload, and flagged
only when it falls outside a robust band derived from that
trajectory's own spread.

For a baseline of historical headline timings ``b_1..b_n`` (matching
``(bench, workload_key)``, most recent ``window`` records):

* centre  = median(b)
* spread  = MAD(b) * 1.4826  (the robust sigma estimate; 0 for n == 1)
* band    = max(tolerance * centre, z * spread, absolute_floor)

A fresh timing ``t`` is a **regression** when ``t > centre + band`` and
an **improvement** when ``t < centre - band``.  The relative
``tolerance`` floor (default 0.75, i.e. flag past ~1.75x the median)
absorbs cross-machine noise while still catching the order-of-magnitude
cliffs that matter (an injected 5x slowdown is far outside the band);
the ``absolute_floor`` (default 5 ms) keeps micro-benchmarks from
flagging on scheduler jitter.

Benchmarks with no matching trajectory — brand new, or a changed
workload (different ``workload_key``) — report ``no-baseline`` and do
not fail the gate: the run that records them *starts* the trajectory.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.bench.history import History
from repro.bench.record import BenchResult

#: Verdict statuses, in severity order.
REGRESSION = "regression"
IMPROVED = "improved"
OK = "ok"
NO_BASELINE = "no-baseline"

DEFAULT_TOLERANCE = 0.75
DEFAULT_WINDOW = 20
DEFAULT_Z = 3.0
DEFAULT_ABSOLUTE_FLOOR = 0.005  # seconds


@dataclasses.dataclass
class Verdict:
    """The comparison outcome for one fresh record."""

    bench: str
    workload_key: str
    status: str
    fresh_seconds: float
    baseline_median: Optional[float] = None
    baseline_runs: int = 0
    band_seconds: Optional[float] = None
    ratio: Optional[float] = None
    message: str = ""

    @property
    def is_regression(self) -> bool:
        return self.status == REGRESSION


@dataclasses.dataclass
class Comparison:
    """All verdicts of one gate run."""

    verdicts: List[Verdict]
    tolerance: float
    window: int

    @property
    def regressions(self) -> List[Verdict]:
        return [verdict for verdict in self.verdicts if verdict.is_regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """A fixed-width report table plus a one-line summary."""
        lines = [
            f"{'benchmark':<32} {'status':<12} {'fresh_s':>10} "
            f"{'base_s':>10} {'ratio':>7} {'runs':>5}  note"
        ]
        order = {REGRESSION: 0, IMPROVED: 1, OK: 2, NO_BASELINE: 3}
        for verdict in sorted(
            self.verdicts, key=lambda v: (order.get(v.status, 9), v.bench)
        ):
            base = (
                f"{verdict.baseline_median:.6f}"
                if verdict.baseline_median is not None
                else "-"
            )
            ratio = f"{verdict.ratio:.2f}x" if verdict.ratio is not None else "-"
            lines.append(
                f"{verdict.bench:<32} {verdict.status:<12} "
                f"{verdict.fresh_seconds:>10.6f} {base:>10} {ratio:>7} "
                f"{verdict.baseline_runs:>5}  {verdict.message}"
            )
        counts: Dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.status] = counts.get(verdict.status, 0) + 1
        summary = ", ".join(
            f"{counts[status]} {status}"
            for status in (REGRESSION, IMPROVED, OK, NO_BASELINE)
            if status in counts
        )
        lines.append(
            ("FAIL: " if not self.ok else "PASS: ")
            + (summary or "nothing compared")
            + f" (tolerance {self.tolerance:.2f}, window {self.window})"
        )
        return "\n".join(lines)


def robust_band(
    baseline: List[float],
    tolerance: float = DEFAULT_TOLERANCE,
    z: float = DEFAULT_Z,
    absolute_floor: float = DEFAULT_ABSOLUTE_FLOOR,
) -> Tuple[float, float]:
    """``(median, band)`` for a baseline series (see module docstring)."""
    centre = statistics.median(baseline)
    if len(baseline) > 1:
        mad = statistics.median(
            [abs(value - centre) for value in baseline]
        )
        spread = 1.4826 * mad
    else:
        spread = 0.0
    band = max(tolerance * centre, z * spread, absolute_floor)
    return centre, band


def _as_dict(record: Union[BenchResult, Dict]) -> Dict:
    return record.to_dict() if isinstance(record, BenchResult) else record


def compare_records(
    fresh: Iterable[Union[BenchResult, Dict]],
    history_records: Iterable[Dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    z: float = DEFAULT_Z,
    absolute_floor: float = DEFAULT_ABSOLUTE_FLOOR,
) -> Comparison:
    """Compare fresh records against a trajectory, one verdict each."""
    baselines: Dict[Tuple[str, str], List[float]] = {}
    for record in history_records:
        key = (record["bench"], record["workload_key"])
        baselines.setdefault(key, []).append(
            float(record["wall_clock"]["seconds"])
        )

    verdicts: List[Verdict] = []
    for record in fresh:
        record = _as_dict(record)
        bench = record["bench"]
        key = (bench, record["workload_key"])
        seconds = float(record["wall_clock"]["seconds"])
        series = baselines.get(key)
        if not series:
            same_bench = any(b == bench for b, _ in baselines)
            verdicts.append(
                Verdict(
                    bench=bench,
                    workload_key=record["workload_key"],
                    status=NO_BASELINE,
                    fresh_seconds=seconds,
                    message=(
                        "workload changed; trajectory restarts"
                        if same_bench
                        else "first record; trajectory starts here"
                    ),
                )
            )
            continue
        recent = series[-window:] if window > 0 else series
        centre, band = robust_band(recent, tolerance, z, absolute_floor)
        ratio = seconds / centre if centre > 0 else float("inf")
        if seconds > centre + band:
            status = REGRESSION
            message = (
                f"exceeds median {centre:.6f}s by more than the "
                f"{band:.6f}s band"
            )
        elif seconds < centre - band:
            status = IMPROVED
            message = f"below median {centre:.6f}s by more than the band"
        else:
            status = OK
            message = ""
        verdicts.append(
            Verdict(
                bench=bench,
                workload_key=record["workload_key"],
                status=status,
                fresh_seconds=seconds,
                baseline_median=centre,
                baseline_runs=len(recent),
                band_seconds=band,
                ratio=ratio,
                message=message,
            )
        )
    return Comparison(verdicts=verdicts, tolerance=tolerance, window=window)


def compare_against_history(
    fresh: Iterable[Union[BenchResult, Dict]],
    history: Union[History, str],
    **kwargs,
) -> Comparison:
    """Compare fresh records against the stored trajectory."""
    store = history if isinstance(history, History) else History(history)
    return compare_records(fresh, store.records(), **kwargs)


def self_compare(history: Union[History, str], **kwargs) -> Comparison:
    """Gate the trajectory against itself: newest record per
    ``(bench, workload_key)`` versus the records before it.

    This is what ``repro bench compare`` does with no fresh file — a
    health check that the committed trajectory's tips sit inside their
    own bands.
    """
    store = history if isinstance(history, History) else History(history)
    fresh: List[Dict] = []
    baseline: List[Dict] = []
    for records in store.grouped().values():
        fresh.append(records[-1])
        baseline.extend(records[:-1])
    return compare_records(fresh, baseline, **kwargs)
