"""The append-only benchmark trajectory store: ``BENCH_history.jsonl``.

One schema-versioned record per line, appended after every benchmark
run and never rewritten — the file *is* the performance trajectory of
the repository, and ``repro bench compare`` gates fresh runs against
it.  Records are grouped by ``(bench, workload_key)``: a workload
parameter change starts a new trajectory for that benchmark instead of
corrupting the old one.

Corrupt or foreign lines are skipped on load (and counted), so one
bad append can never take the trend tooling down.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro import obs
from repro.bench.record import BenchResult, SchemaError, migrate, validate

logger = logging.getLogger(__name__)

#: Default store location, resolved relative to the working directory.
DEFAULT_HISTORY = "BENCH_history.jsonl"


class History:
    """Append and query the JSONL trajectory store at ``path``."""

    def __init__(self, path: str = DEFAULT_HISTORY):
        self.path = path

    # -- writing -------------------------------------------------------- #

    def append(self, record: Union[BenchResult, Dict]) -> Dict:
        """Append one record (validated) and return its dict form."""
        payload = record.to_dict() if isinstance(record, BenchResult) else record
        validate(payload)
        line = json.dumps(payload, sort_keys=True, default=str)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
        return payload

    def append_all(self, records: Iterable[Union[BenchResult, Dict]]) -> int:
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    # -- reading -------------------------------------------------------- #

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Tuple[List[Dict], int]:
        """All valid records in append order, plus the skipped-line count."""
        records: List[Dict] = []
        skipped = 0
        if not self.exists():
            return records, skipped
        with open(self.path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = migrate(json.loads(line))
                    validate(record)
                except (json.JSONDecodeError, SchemaError) as exc:
                    skipped += 1
                    obs.inc("bench.history.skipped_lines")
                    logger.warning(
                        "skipping corrupt history line %s:%d: %s",
                        self.path,
                        number,
                        exc,
                    )
                    continue
                records.append(record)
        return records, skipped

    def records(self) -> List[Dict]:
        return self.load()[0]

    def benches(self) -> List[str]:
        """Distinct benchmark ids present, sorted."""
        return sorted({record["bench"] for record in self.records()})

    def records_for(
        self,
        bench: str,
        workload_key: Optional[str] = None,
        window: Optional[int] = None,
    ) -> List[Dict]:
        """The trajectory of one benchmark, oldest first.

        ``workload_key`` restricts to one parameterisation; ``window``
        keeps only the most recent N records.
        """
        matching = [
            record
            for record in self.records()
            if record["bench"] == bench
            and (workload_key is None or record["workload_key"] == workload_key)
        ]
        if window is not None and window > 0:
            matching = matching[-window:]
        return matching

    def latest(
        self, bench: str, workload_key: Optional[str] = None
    ) -> Optional[Dict]:
        matching = self.records_for(bench, workload_key)
        return matching[-1] if matching else None

    def trend(
        self,
        bench: str,
        workload_key: Optional[str] = None,
        window: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """``(created_at, seconds)`` pairs, oldest first."""
        return [
            (record["created_at"], float(record["wall_clock"]["seconds"]))
            for record in self.records_for(bench, workload_key, window)
        ]

    def grouped(self) -> Dict[Tuple[str, str], List[Dict]]:
        """All records keyed by ``(bench, workload_key)``, append order."""
        groups: Dict[Tuple[str, str], List[Dict]] = {}
        for record in self.records():
            groups.setdefault(
                (record["bench"], record["workload_key"]), []
            ).append(record)
        return groups
