"""Execute registered benchmark cases and produce schema-versioned records.

Methodology, identical for every case:

1. ``warmup`` untimed runs (JIT-free Python still benefits: imports,
   memo caches, compiled kernel caches, branch warm-up).
2. ``repeats`` timed runs.  Each timed run executes under a fresh
   :class:`~repro.obs.recorder.StatsRecorder` with an in-memory sink,
   so every repeat yields the engine-internal metrics *and* the span
   stream of exactly that run.
3. The headline number is the **median** of the repeat wall-clocks
   (robust to a stray scheduler hiccup; min/max/mean/stdev and the raw
   samples are kept in the record).
4. The metrics snapshot and span-tree profile attached to the record
   come from the *median* repeat — the run the headline number
   describes, not an unrepresentative best or worst case.

The case callable receives the merged parameter dict and may return a
dict of benchmark-specific results, recorded under ``extra``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro import obs
from repro.bench.record import (
    BenchResult,
    environment_fingerprint,
    wall_clock_stats,
)
from repro.bench.registry import BenchCase, all_cases, get_case


def _median_index(samples: List[float]) -> int:
    """The index of the sample the median headline describes.

    For an even count the median is interpolated; the lower-middle
    sample is the closest real run.
    """
    order = sorted(range(len(samples)), key=lambda i: samples[i])
    return order[(len(samples) - 1) // 2]


def run_case(
    case_or_id,
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
    source: str = "runner",
    progress: Optional[Callable[[str], None]] = None,
) -> BenchResult:
    """Run one registered case and return its :class:`BenchResult`."""
    case: BenchCase = (
        case_or_id if isinstance(case_or_id, BenchCase) else get_case(case_or_id)
    )
    params = case.merged_params(quick)
    n_repeats = repeats if repeats is not None else case.effective_repeats(quick)
    n_warmup = warmup if warmup is not None else case.warmup
    if n_repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {n_repeats}")

    if progress:
        progress(
            f"{case.bench_id}: warmup={n_warmup} repeats={n_repeats}"
            + (" quick" if quick else "")
        )

    for _ in range(n_warmup):
        case.fn(dict(params))

    samples: List[float] = []
    metrics_per_run: List[Dict[str, Any]] = []
    profile_per_run: List[Dict[str, Any]] = []
    extra: Optional[Dict[str, Any]] = None
    for _ in range(n_repeats):
        sink = obs.ListSink()
        recorder = obs.StatsRecorder(sink=sink)
        with obs.use(recorder):
            begin = time.perf_counter()
            result = case.fn(dict(params))
            elapsed = time.perf_counter() - begin
        recorder.close()
        samples.append(elapsed)
        metrics_per_run.append(recorder.summary())
        profile_per_run.append(obs.profile_spans(sink.events).to_dict())
        if isinstance(result, dict):
            extra = result

    pick = _median_index(samples)
    return BenchResult(
        bench=case.bench_id,
        group=case.group,
        workload=params,
        environment=environment_fingerprint(),
        methodology={
            "repeats": n_repeats,
            "warmup": n_warmup,
            "timer": "perf_counter",
            "reduce": "median",
            "quick": bool(quick),
        },
        wall_clock=wall_clock_stats(samples, reduce="median"),
        metrics=metrics_per_run[pick],
        profile=profile_per_run[pick],
        extra=extra or {},
        source=source,
    )


def run_many(
    bench_ids: Optional[Iterable[str]] = None,
    *,
    group: Optional[str] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run a set of cases (all registered ones by default), in id order."""
    if bench_ids is not None:
        cases = [get_case(bench_id) for bench_id in bench_ids]
    else:
        cases = all_cases(group=group)
    return [
        run_case(
            case,
            quick=quick,
            repeats=repeats,
            warmup=warmup,
            progress=progress,
        )
        for case in cases
    ]
