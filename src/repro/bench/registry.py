"""The declarative benchmark registry.

A :class:`BenchCase` is a named, parameterised workload: a callable
plus the declared parameter dict it runs with.  The thirteen ad-hoc
``benchmarks/bench_*.py`` scripts are absorbed here as registered
cases (see :mod:`repro.bench.cases`), so one runner executes them all,
every run is recorded in the same schema, and the parameter sweeps the
pytest benchmark files use come from a single declaration.

Each case declares two parameter profiles:

* ``params`` — the full workload, comparable against the recorded
  trajectory of full runs;
* ``quick`` — overrides applied in quick mode (``repro bench run
  --quick``), sized for CI and the test suite.

Because the merged parameter dict *is* the workload metadata recorded
in the :class:`~repro.bench.record.BenchResult`, the trend store keys
full-mode and quick-mode trajectories separately and a parameter
change automatically starts a fresh trajectory.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import ReproError


class UnknownBenchmark(ReproError):
    """Asked for a benchmark id that is not registered."""


@dataclasses.dataclass(frozen=True)
class BenchCase:
    """One registered benchmark: id, workload declaration, runner."""

    bench_id: str
    group: str
    fn: Callable[[Dict[str, Any]], Optional[Dict[str, Any]]]
    params: Dict[str, Any]
    quick: Dict[str, Any]
    repeats: int = 3
    quick_repeats: int = 1
    warmup: int = 1
    description: str = ""
    tags: Tuple[str, ...] = ()

    def merged_params(self, quick: bool = False) -> Dict[str, Any]:
        """The effective workload parameters for a run."""
        merged = dict(self.params)
        if quick:
            merged.update(self.quick)
            merged["quick"] = True
        return merged

    def effective_repeats(self, quick: bool = False) -> int:
        return self.quick_repeats if quick else self.repeats


_REGISTRY: Dict[str, BenchCase] = {}
_CASES_LOADED = False


def register(
    bench_id: str,
    *,
    group: str,
    params: Dict[str, Any],
    quick: Optional[Dict[str, Any]] = None,
    repeats: int = 3,
    quick_repeats: int = 1,
    warmup: int = 1,
    description: str = "",
    tags: Sequence[str] = (),
) -> Callable:
    """Decorator: register ``fn`` as the runner of benchmark ``bench_id``.

    ``bench_id`` must be the dotted ``<group>.<name>`` form and unique;
    double registration is an error (it would silently fork a
    trajectory).
    """
    if "." not in bench_id:
        raise ValueError(
            f"bench id must be dotted '<group>.<name>', got {bench_id!r}"
        )
    if not bench_id.startswith(group + "."):
        raise ValueError(
            f"bench id {bench_id!r} must start with its group {group!r}"
        )

    def decorator(fn: Callable) -> Callable:
        if bench_id in _REGISTRY:
            raise ValueError(f"benchmark {bench_id!r} registered twice")
        doc = description
        if not doc and fn.__doc__:
            lines = fn.__doc__.strip().splitlines()
            doc = lines[0] if lines else ""
        _REGISTRY[bench_id] = BenchCase(
            bench_id=bench_id,
            group=group,
            fn=fn,
            params=dict(params),
            quick=dict(quick or {}),
            repeats=repeats,
            quick_repeats=quick_repeats,
            warmup=warmup,
            description=doc,
            tags=tuple(tags),
        )
        return fn

    return decorator


def register_case(case: BenchCase) -> BenchCase:
    """Register a prebuilt case (tests and programmatic callers)."""
    if case.bench_id in _REGISTRY:
        raise ValueError(f"benchmark {case.bench_id!r} registered twice")
    _REGISTRY[case.bench_id] = case
    return case


def unregister(bench_id: str) -> None:
    """Remove a case (test isolation only)."""
    _REGISTRY.pop(bench_id, None)


def load_cases() -> None:
    """Import the built-in case declarations exactly once."""
    global _CASES_LOADED
    if not _CASES_LOADED:
        _CASES_LOADED = True
        import repro.bench.cases  # noqa: F401  (registers on import)


def get_case(bench_id: str) -> BenchCase:
    load_cases()
    case = _REGISTRY.get(bench_id)
    if case is None:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise UnknownBenchmark(
            f"unknown benchmark {bench_id!r}; registered: {known}"
        )
    return case


def all_cases(group: Optional[str] = None) -> List[BenchCase]:
    load_cases()
    cases = sorted(_REGISTRY.values(), key=lambda case: case.bench_id)
    if group is not None:
        cases = [case for case in cases if case.group == group]
    return cases


def workload(bench_id: str) -> Dict[str, Any]:
    """The declared (full) parameters of a registered case.

    The ``benchmarks/bench_*.py`` pytest files read their sweep series
    through this, so the registry is the single source of workload
    truth.
    """
    return dict(get_case(bench_id).params)
