"""Tests for ground atoms and atom-space enumeration."""

import pytest

from repro.relational.atoms import Atom, all_atoms, atom_count, make_atom
from repro.relational.schema import Vocabulary
from repro.util.errors import VocabularyError


class TestAtom:
    def test_construction_and_fields(self):
        atom = Atom("E", ("a", "b"))
        assert atom.relation == "E"
        assert atom.args == ("a", "b")
        assert atom.arity == 2

    def test_make_atom_normalises_lists(self):
        assert make_atom("E", ["a", "b"]) == Atom("E", ("a", "b"))

    def test_str(self):
        assert str(Atom("S", ("x",))) == "S('x')"

    def test_zero_ary(self):
        atom = Atom("Flag", ())
        assert atom.arity == 0

    def test_ordering_is_total(self):
        atoms = [Atom("B", (1,)), Atom("A", (2,)), Atom("A", (1,))]
        assert sorted(atoms) == [Atom("A", (1,)), Atom("A", (2,)), Atom("B", (1,))]


class TestAllAtoms:
    def test_counts_match_formula(self):
        vocab = Vocabulary([("E", 2), ("S", 1), ("Flag", 0)])
        universe = ["a", "b", "c"]
        atoms = list(all_atoms(vocab, universe))
        assert len(atoms) == 9 + 3 + 1
        assert len(atoms) == atom_count(vocab, 3)

    def test_deterministic_order(self):
        vocab = Vocabulary([("S", 1), ("E", 2)])
        first = list(all_atoms(vocab, [1, 2]))
        second = list(all_atoms(vocab, [1, 2]))
        assert first == second
        # Relations come sorted by name: E before S.
        assert first[0].relation == "E"

    def test_empty_universe(self):
        vocab = Vocabulary([("E", 2), ("Flag", 0)])
        atoms = list(all_atoms(vocab, []))
        # Only the 0-ary atom survives an empty universe.
        assert atoms == [Atom("Flag", ())]

    def test_atom_count_negative_size_rejected(self):
        vocab = Vocabulary([("E", 2)])
        with pytest.raises(VocabularyError):
            atom_count(vocab, -1)
