"""Tests for the canonical text encoding (the paper's input measure)."""

from fractions import Fraction

import pytest

from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.relational.encoding import (
    decode_structure,
    encode_error_function,
    encode_structure,
    encoded_size,
)
from repro.util.errors import VocabularyError


@pytest.fixture
def sample():
    return (
        StructureBuilder(["a", "b", 3])
        .relation("E", 2)
        .relation("S", 1)
        .add("E", ("a", "b"))
        .add("E", ("b", 3))
        .add("S", (3,))
        .build()
    )


class TestRoundTrip:
    def test_encode_decode_identity(self, sample):
        assert decode_structure(encode_structure(sample)) == sample

    def test_encoding_is_deterministic(self, sample):
        assert encode_structure(sample) == encode_structure(sample)

    def test_comments_and_blanks_ignored(self, sample):
        text = "# a comment\n\n" + encode_structure(sample)
        assert decode_structure(text) == sample

    def test_missing_universe_rejected(self):
        with pytest.raises(VocabularyError):
            decode_structure("relation E 2\n")

    def test_tuple_for_undeclared_relation_rejected(self):
        with pytest.raises(VocabularyError):
            decode_structure("universe 1\ntuple E 1 1\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(VocabularyError):
            decode_structure("universe 1\nbogus\n")


class TestSizes:
    def test_error_function_renders_fractions(self, sample):
        mu = {Atom("E", ("a", "b")): Fraction(1, 10)}
        text = encode_error_function(mu)
        assert "1/10" in text

    def test_encoded_size_grows_with_data(self, sample):
        small = encoded_size(sample, {})
        big = encoded_size(
            sample, {atom: Fraction(1, 7) for atom in sample.atoms()}
        )
        assert big > small
