"""Tests for immutable relational structures."""

import pytest

from repro.relational.atoms import Atom
from repro.relational.schema import Vocabulary
from repro.relational.structure import Structure
from repro.util.errors import VocabularyError


@pytest.fixture
def vocab():
    return Vocabulary([("E", 2), ("S", 1)])


@pytest.fixture
def base(vocab):
    return Structure(vocab, ["a", "b", "c"], {"E": [("a", "b")], "S": [("a",)]})


class TestConstruction:
    def test_relations_default_empty(self, vocab):
        structure = Structure(vocab, ["a"])
        assert structure.relation("E") == frozenset()
        assert structure.relation("S") == frozenset()

    def test_duplicate_universe_rejected(self, vocab):
        with pytest.raises(VocabularyError):
            Structure(vocab, ["a", "a"])

    def test_wrong_arity_rejected(self, vocab):
        with pytest.raises(VocabularyError):
            Structure(vocab, ["a"], {"E": [("a",)]})

    def test_foreign_element_rejected(self, vocab):
        with pytest.raises(VocabularyError):
            Structure(vocab, ["a"], {"S": [("z",)]})

    def test_unknown_relation_rejected(self, vocab):
        with pytest.raises(VocabularyError):
            Structure(vocab, ["a"], {"Q": [("a",)]})

    def test_len_is_universe_size(self, base):
        assert len(base) == 3


class TestAtomsAndHolds:
    def test_holds(self, base):
        assert base.holds(Atom("E", ("a", "b")))
        assert not base.holds(Atom("E", ("b", "a")))
        assert base.holds(Atom("S", ("a",)))

    def test_true_atoms(self, base):
        assert set(base.true_atoms()) == {
            Atom("E", ("a", "b")),
            Atom("S", ("a",)),
        }

    def test_atom_space_size(self, base):
        assert sum(1 for _ in base.atoms()) == 9 + 3


class TestUpdates:
    def test_with_atom_add(self, base):
        updated = base.with_atom(Atom("S", ("b",)), True)
        assert updated.holds(Atom("S", ("b",)))
        assert not base.holds(Atom("S", ("b",)))  # original untouched

    def test_with_atom_noop_returns_same_object(self, base):
        assert base.with_atom(Atom("S", ("a",)), True) is base

    def test_flip(self, base):
        flipped = base.flip(Atom("E", ("a", "b")))
        assert not flipped.holds(Atom("E", ("a", "b")))
        assert flipped.flip(Atom("E", ("a", "b"))) == base

    def test_flip_all_matches_sequential_flips(self, base):
        atoms = [Atom("E", ("a", "b")), Atom("E", ("c", "c")), Atom("S", ("b",))]
        bulk = base.flip_all(atoms)
        sequential = base
        for atom in atoms:
            sequential = sequential.flip(atom)
        assert bulk == sequential

    def test_flip_all_empty(self, base):
        assert base.flip_all([]) == base

    def test_with_relation_replaces(self, base):
        updated = base.with_relation("E", [("c", "c")])
        assert updated.relation("E") == frozenset({("c", "c")})

    def test_with_relation_validates(self, base):
        with pytest.raises(VocabularyError):
            base.with_relation("E", [("a",)])


class TestExpandRestrict:
    def test_expand_adds_symbols_and_elements(self, base):
        expanded = base.expand(
            Vocabulary([("R", 1)]), extra_universe=("d",), relations={"R": [("d",)]}
        )
        assert len(expanded) == 4
        assert expanded.holds(Atom("R", ("d",)))
        assert expanded.holds(Atom("E", ("a", "b")))

    def test_expand_rejects_override(self, base):
        with pytest.raises(VocabularyError):
            base.expand(Vocabulary([("R", 1)]), relations={"E": [("a", "a")]})

    def test_restrict_drops_tuples(self, base):
        expanded = base.expand(Vocabulary([("R", 1)]), extra_universe=("d",))
        widened = expanded.with_relation("E", [("a", "b"), ("a", "d")])
        reduct = widened.restrict(("a", "b", "c"), base.vocabulary)
        assert reduct == base

    def test_restrict_superset_rejected(self, base):
        with pytest.raises(VocabularyError):
            base.restrict(("a", "z"))


class TestIdentity:
    def test_equality_and_hash(self, base, vocab):
        same = Structure(vocab, ["a", "b", "c"], {"E": [("a", "b")], "S": [("a",)]})
        assert base == same
        assert hash(base) == hash(same)

    def test_same_format(self, base, vocab):
        other = Structure(vocab, ["a", "b", "c"])
        assert base.same_format(other)
        assert not base.same_format(Structure(vocab, ["a", "b"]))

    def test_difference_atoms(self, base):
        other = base.flip(Atom("S", ("a",))).flip(Atom("E", ("c", "a")))
        diff = base.difference_atoms(other)
        assert set(diff) == {Atom("S", ("a",)), Atom("E", ("c", "a"))}

    def test_difference_requires_same_format(self, base, vocab):
        with pytest.raises(VocabularyError):
            base.difference_atoms(Structure(vocab, ["a", "b"]))
