"""Tests for the structure builder and graph convenience constructor."""

import pytest

from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder, graph_structure
from repro.util.errors import VocabularyError


class TestStructureBuilder:
    def test_chaining(self):
        structure = (
            StructureBuilder([1, 2])
            .relation("E", 2)
            .add("E", (1, 2))
            .add("E", (2, 1))
            .build()
        )
        assert structure.relation("E") == frozenset({(1, 2), (2, 1)})

    def test_add_before_declare_rejected(self):
        builder = StructureBuilder([1])
        with pytest.raises(VocabularyError):
            builder.add("E", (1, 1))

    def test_redeclare_consistent_ok(self):
        builder = StructureBuilder([1]).relation("E", 2).relation("E", 2)
        assert builder.build().vocabulary.arity("E") == 2

    def test_redeclare_conflicting_rejected(self):
        builder = StructureBuilder([1]).relation("E", 2)
        with pytest.raises(VocabularyError):
            builder.relation("E", 1)

    def test_add_all(self):
        structure = (
            StructureBuilder([1, 2, 3])
            .relation("S", 1)
            .add_all("S", [(1,), (3,)])
            .build()
        )
        assert structure.relation("S") == frozenset({(1,), (3,)})

    def test_fact_zero_ary(self):
        structure = StructureBuilder([1]).fact("Enabled").build()
        assert structure.holds(Atom("Enabled", ()))

    def test_invalid_tuple_caught_at_build(self):
        builder = StructureBuilder([1]).relation("E", 2).add("E", (1, 99))
        with pytest.raises(VocabularyError):
            builder.build()


class TestGraphStructure:
    def test_directed(self):
        g = graph_structure([1, 2], [(1, 2)])
        assert g.holds(Atom("E", (1, 2)))
        assert not g.holds(Atom("E", (2, 1)))

    def test_symmetric(self):
        g = graph_structure([1, 2], [(1, 2)], symmetric=True)
        assert g.holds(Atom("E", (2, 1)))

    def test_extra_unary_empty(self):
        g = graph_structure([1], [], extra_unary=("R1", "R2"))
        assert g.relation("R1") == frozenset()
        assert "R2" in g.vocabulary
