"""Tests for relation symbols and vocabularies."""

import pytest

from repro.relational.schema import RelationSymbol, Vocabulary
from repro.util.errors import VocabularyError


class TestRelationSymbol:
    def test_basic_construction(self):
        symbol = RelationSymbol("E", 2)
        assert symbol.name == "E"
        assert symbol.arity == 2
        assert str(symbol) == "E/2"

    def test_zero_arity_allowed(self):
        assert RelationSymbol("Flag", 0).arity == 0

    def test_negative_arity_rejected(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("E", -1)

    def test_invalid_name_rejected(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("", 1)
        with pytest.raises(VocabularyError):
            RelationSymbol("bad name", 1)

    def test_underscore_names_allowed(self):
        assert RelationSymbol("has_part", 2).name == "has_part"

    def test_equality_and_hash(self):
        assert RelationSymbol("E", 2) == RelationSymbol("E", 2)
        assert RelationSymbol("E", 2) != RelationSymbol("E", 3)
        assert hash(RelationSymbol("E", 2)) == hash(RelationSymbol("E", 2))


class TestVocabulary:
    def test_construction_from_tuples(self):
        vocab = Vocabulary([("E", 2), ("S", 1)])
        assert len(vocab) == 2
        assert "E" in vocab
        assert vocab.arity("E") == 2
        assert vocab.arity("S") == 1

    def test_names_sorted(self):
        vocab = Vocabulary([("Z", 1), ("A", 1), ("M", 1)])
        assert vocab.names() == ("A", "M", "Z")

    def test_duplicate_consistent_ok(self):
        vocab = Vocabulary([("E", 2), ("E", 2)])
        assert len(vocab) == 1

    def test_duplicate_conflicting_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary([("E", 2), ("E", 3)])

    def test_unknown_symbol_lookup(self):
        vocab = Vocabulary([("E", 2)])
        with pytest.raises(VocabularyError):
            vocab.symbol("Missing")

    def test_extend_adds_fresh(self):
        vocab = Vocabulary([("E", 2)])
        bigger = vocab.extend([("R", 1)])
        assert "R" in bigger
        assert "R" not in vocab  # original untouched

    def test_extend_rejects_existing_name(self):
        vocab = Vocabulary([("E", 2)])
        with pytest.raises(VocabularyError):
            vocab.extend([("E", 1)])

    def test_equality_order_independent(self):
        assert Vocabulary([("A", 1), ("B", 2)]) == Vocabulary(
            [("B", 2), ("A", 1)]
        )

    def test_hashable(self):
        assert hash(Vocabulary([("E", 2)])) == hash(Vocabulary([("E", 2)]))
