"""Unit tests of the serve policy building blocks.

Retry backoff, circuit breaker state machine, bounded deadline-aware
backlog, and the degradation ladder — each exercised in isolation, on
an explicit clock, before test_server.py composes them.
"""

import pytest

from repro.runtime.budget import Budget
from repro.runtime.executor import DEFAULT_CHAIN
from repro.serve.admission import DegradationLadder, tier_filter
from repro.serve.breaker import CircuitBreaker
from repro.serve.queue import Backlog
from repro.serve.retry import RetryPolicy
from repro.util.errors import ResourceError


class TestRetryPolicy:
    def test_only_transient_outcomes_retry(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(0, ["budget_exceeded"])
        assert policy.should_retry(1, ["cost_refused", "budget_exceeded"])
        assert not policy.should_retry(0, ["cost_refused"])
        assert not policy.should_retry(0, ["fragment_mismatch"])
        assert not policy.should_retry(0, [])

    def test_max_retries_caps_the_schedule(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(1, ["budget_exceeded"])
        assert not policy.should_retry(2, ["budget_exceeded"])
        assert not RetryPolicy(max_retries=0).should_retry(
            0, ["budget_exceeded"]
        )

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert policy.delay(0, "q") == pytest.approx(0.1)
        assert policy.delay(1, "q") == pytest.approx(0.2)
        assert policy.delay(2, "q") == pytest.approx(0.4)
        assert policy.delay(3, "q") == pytest.approx(0.5)  # capped
        assert policy.delay(9, "q") == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=2.0, jitter=0.5)
        first = policy.delay(1, "q7")
        assert first == policy.delay(1, "q7")  # same key, same draw
        assert 0.2 <= first <= 0.2 * 1.5
        # Different keys decorrelate (with overwhelming probability).
        assert policy.delay(1, "q7") != policy.delay(1, "q8")

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ResourceError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ResourceError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ResourceError):
            RetryPolicy(jitter=-0.5)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        assert breaker.allow("exact", 0.0)
        breaker.record("exact", "budget_exceeded", 0.1)
        breaker.record("exact", "budget_exceeded", 0.2)
        assert breaker.state("exact") == "closed"
        breaker.record("exact", "budget_exceeded", 0.3)
        assert breaker.state("exact") == "open"
        assert not breaker.allow("exact", 0.4)
        assert breaker.reopen_at("exact") == pytest.approx(1.3)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record("exact", "budget_exceeded", 0.1)
        breaker.record("exact", "ok", 0.2)
        breaker.record("exact", "budget_exceeded", 0.3)
        assert breaker.state("exact") == "closed"

    def test_permanent_outcomes_are_not_health_signals(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record("exact", "cost_refused", 0.1)
        breaker.record("lifted", "fragment_mismatch", 0.2)
        assert breaker.state("exact") == "closed"
        assert breaker.state("lifted") == "closed"

    def test_half_open_probe_heals_or_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record("exact", "budget_exceeded", 0.0)
        assert not breaker.allow("exact", 0.5)
        # Cooldown passed: the next asker gets a probe through.
        assert breaker.allow("exact", 1.5)
        assert breaker.state("exact") == "half_open"
        breaker.record("exact", "ok", 1.6)
        assert breaker.state("exact") == "closed"
        # Trip again; this time the probe fails and reopens.
        breaker.record("exact", "budget_exceeded", 2.0)
        assert breaker.allow("exact", 3.5)
        breaker.record("exact", "budget_exceeded", 3.6)
        assert breaker.state("exact") == "open"
        assert breaker.reopen_at("exact") == pytest.approx(4.6)

    def test_transitions_log_is_the_replay_fingerprint(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record("exact", "budget_exceeded", 0.0)
        breaker.allow("exact", 1.5)
        breaker.record("exact", "ok", 1.6)
        assert breaker.transitions == [
            (0.0, "exact", "closed", "open"),
            (1.5, "exact", "open", "half_open"),
            (1.6, "exact", "half_open", "closed"),
        ]

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ResourceError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ResourceError):
            CircuitBreaker(cooldown=-1.0)


class _FakeTicket:
    def __init__(self, not_before=0.0, deadline=None, clock=None):
        self.not_before = not_before
        self.budget = Budget(
            deadline=deadline, clock=clock or (lambda: 0.0)
        ).start()


class TestBacklog:
    def test_capacity_and_membership(self):
        backlog = Backlog(2)
        a, b = _FakeTicket(), _FakeTicket()
        backlog.push(a)
        assert not backlog.full
        backlog.push(b)
        assert backlog.full and len(backlog) == 2
        backlog.remove(a)
        assert not backlog.full and list(backlog) == [b]

    def test_ready_honours_not_before(self):
        backlog = Backlog(4)
        now_ticket = _FakeTicket(not_before=0.0)
        later = _FakeTicket(not_before=5.0)
        backlog.push(now_ticket)
        backlog.push(later)
        assert backlog.ready(1.0) == [now_ticket]
        assert set(backlog.ready(5.0)) == {now_ticket, later}

    def test_take_expired_removes_overdue_tickets(self):
        time = {"now": 0.0}
        clock = lambda: time["now"]  # noqa: E731
        backlog = Backlog(4)
        doomed = _FakeTicket(deadline=1.0, clock=clock)
        healthy = _FakeTicket(deadline=10.0, clock=clock)
        unbounded = _FakeTicket(clock=clock)
        for ticket in (doomed, healthy, unbounded):
            backlog.push(ticket)
        time["now"] = 2.0
        assert backlog.take_expired(2.0) == [doomed]
        assert list(backlog) == [healthy, unbounded]

    def test_next_event_is_the_earliest_timer(self):
        time = {"now": 0.0}
        clock = lambda: time["now"]  # noqa: E731
        backlog = Backlog(4)
        assert backlog.next_event(0.0) is None
        backlog.push(_FakeTicket(not_before=3.0, clock=clock))
        backlog.push(_FakeTicket(deadline=2.0, clock=clock))
        assert backlog.next_event(0.0) == pytest.approx(2.0)


class TestDegradationLadder:
    def test_tiers_by_depth(self):
        ladder = DegradationLadder(relative_at=4, additive_at=8)
        assert ladder.tier_for_depth(0) == "exact"
        assert ladder.tier_for_depth(3) == "exact"
        assert ladder.tier_for_depth(4) == "relative"
        assert ladder.tier_for_depth(7) == "relative"
        assert ladder.tier_for_depth(8) == "additive"
        assert ladder.tier_for_depth(100) == "additive"

    def test_disabled_rungs(self):
        assert (
            DegradationLadder(relative_at=None, additive_at=None)
            .tier_for_depth(1000)
            == "exact"
        )
        assert (
            DegradationLadder(relative_at=None, additive_at=2)
            .tier_for_depth(3)
            == "additive"
        )

    def test_misordered_rungs_are_rejected(self):
        with pytest.raises(ResourceError):
            DegradationLadder(relative_at=8, additive_at=4)

    def test_tier_filter_drops_stronger_engines(self):
        chain = DEFAULT_CHAIN  # safe_lifted, exact, karp_luby, montecarlo
        assert tier_filter(chain, "reliability", "exact") == chain
        # For reliability, karp_luby only certifies an additive bound.
        assert tier_filter(chain, "reliability", "relative") == (
            "karp_luby",
            "montecarlo",
        )
        # For probability it is a true relative-error estimator.
        assert tier_filter(chain, "probability", "relative") == (
            "karp_luby",
            "montecarlo",
        )
        assert tier_filter(chain, "reliability", "additive") == (
            "karp_luby",
            "montecarlo",
        )

    def test_tier_filter_never_empties_a_chain(self):
        # A chain with nothing at or below the tier serves at native
        # strength rather than becoming unservable.
        assert tier_filter(("exact",), "reliability", "additive") == ("exact",)

    def test_retain_safe_tier_keeps_safe_lifted_under_degradation(self):
        from repro.serve.admission import retain_safe_tier

        safe = "exists x. exists y. E(x, y) & S(y)"
        unsafe = "exists x. exists y. E(x, y) & S(x) & S(y)"
        degraded = tier_filter(DEFAULT_CHAIN, "reliability", "additive")
        assert "safe_lifted" not in degraded
        # Statically safe: the polynomial tier is re-prepended.
        assert retain_safe_tier(DEFAULT_CHAIN, degraded, safe, "additive") == (
            ("safe_lifted",) + degraded
        )
        # Unsafe (non-hierarchical) or full-strength: chain unchanged.
        assert (
            retain_safe_tier(DEFAULT_CHAIN, degraded, unsafe, "additive")
            == degraded
        )
        assert (
            retain_safe_tier(DEFAULT_CHAIN, DEFAULT_CHAIN, safe, "exact")
            == DEFAULT_CHAIN
        )
        # A chain that never had the static tier is left alone.
        no_tier = ("exact", "montecarlo")
        assert (
            retain_safe_tier(no_tier, ("montecarlo",), safe, "additive")
            == ("montecarlo",)
        )
