"""Whole-server deterministic replay under the virtual clock.

The acceptance bar for the serve scheduler: a concurrent mixed workload
(20+ queries, staggered arrivals, multiple tenants, scripted engine
faults, tight and loose deadlines, hopeless cost caps) run twice from
the same seeds must replay *bit-for-bit* — every admission decision,
fair-share pick, retry, breaker transition, per-query answer, and
telemetry counter identical between runs.
"""

import pytest

from repro import obs
from repro.runtime import faults
from repro.serve import (
    CircuitBreaker,
    DegradationLadder,
    FAILED_CODES,
    REJECTED_CODES,
    RetryPolicy,
    ServeRequest,
    Server,
    SHED_CODES,
)
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

from tests.serve.conftest import QUERY

TENANTS = ("alpha", "beta", "gamma")


def workload():
    """24 mixed requests: safe/unsafe, tight/loose deadlines, hopeless caps."""
    requests = []
    for i in range(24):
        kwargs = dict(
            id=f"q{i:02d}",
            query=QUERY if i % 3 else "exists x. S(x)",
            tenant=TENANTS[i % len(TENANTS)],
            seed=i,
            arrival=0.005 * i,
            epsilon=0.3,
            delta=0.3,
        )
        if i % 5 == 0:
            # Hopeless cost cap with exact pinned: refused at admission.
            kwargs.update(chain=("exact",), max_cost=2)
        elif i % 7 == 0:
            # Deadline below every engine forecast: unmeetable.
            kwargs.update(deadline=1e-9)
        else:
            kwargs.update(deadline=20.0)
        requests.append(ServeRequest(**kwargs))
    return requests


def run_once():
    from repro.kernels.cache import clear_caches

    clear_caches()  # identical cold-cache telemetry on both runs
    db = random_unreliable_database(
        make_rng(1), size=4, relations={"E": 2, "S": 1}, density=0.5
    )
    recorder = obs.StatsRecorder()
    scheduler = faults.VirtualScheduler(default_tick=0.001)
    server = Server(
        db,
        pool_size=3,
        queue_capacity=6,
        ladder=DegradationLadder(relative_at=2, additive_at=4),
        retry=RetryPolicy(max_retries=1, base_delay=0.01),
        breaker=CircuitBreaker(threshold=2, cooldown=0.05),
        scheduler=scheduler,
    )
    schedule = {
        "exact": faults.ScheduledFault(
            fault=faults.TimeoutFault(), at=(1, 3, 8)
        )
    }
    with obs.use(recorder):
        with faults.inject(schedule):
            responses = server.run(workload())
    return responses, server.breaker.transitions, recorder.summary()


class TestReplay:
    def test_two_runs_replay_bit_for_bit(self):
        first, first_trans, first_summary = run_once()
        second, second_trans, second_summary = run_once()
        assert [r.fingerprint() for r in first] == [
            r.fingerprint() for r in second
        ]
        assert first_trans == second_trans
        assert first_summary["counters"] == second_summary["counters"]
        # serve.* timings run on the virtual clock and replay exactly;
        # runtime.* span timings are wall-clock by design and do not.
        serve_hists = lambda s: {  # noqa: E731
            k: v for k, v in s["histograms"].items() if k.startswith("serve.")
        }
        assert serve_hists(first_summary) == serve_hists(second_summary)
        assert serve_hists(first_summary)  # non-vacuous

    def test_workload_exercises_every_path_and_accounts(self):
        responses, transitions, summary = run_once()
        counters = summary["counters"]
        assert len(responses) == 24
        assert sorted(r.id for r in responses) == sorted(
            f"q{i:02d}" for i in range(24)
        )
        codes = {r.code for r in responses}
        assert "ok" in codes
        assert codes & set(REJECTED_CODES)  # cost/deadline refusals

        rejected = sum(1 for r in responses if r.code in REJECTED_CODES)
        shed = sum(1 for r in responses if r.code in SHED_CODES)
        failed = sum(1 for r in responses if r.code in FAILED_CODES)
        ok = sum(1 for r in responses if r.ok)
        assert counters["serve.submitted"] == 24
        assert counters["serve.admitted"] == ok + failed
        assert counters.get("serve.rejected", 0) == rejected
        assert counters.get("serve.shed", 0) == shed
        assert counters["serve.submitted"] == (
            counters["serve.admitted"]
            + counters.get("serve.rejected", 0)
            + counters.get("serve.shed", 0)
        )
        assert counters["serve.admitted"] == (
            counters.get("serve.completed", 0)
            + counters.get("serve.failed", 0)
        )
        # Per-tenant mirrors partition the global totals exactly.
        for name in ("submitted", "admitted", "completed"):
            total = counters.get(f"serve.{name}", 0)
            mirrored = sum(
                counters.get(f"serve.tenant.{tenant}.{name}", 0)
                for tenant in TENANTS
            )
            assert mirrored == total
        # The scripted faults produced retries, and every retried
        # request's response owns its retry count.
        assert counters.get("serve.retries", 0) == sum(
            r.retries for r in responses
        )

    def test_degradation_is_monotone_per_request(self):
        # A response's tier is fixed at admission: whatever engine
        # finally answered, its guarantee is never *stronger* than the
        # admitted tier promised... and the tier field itself is one of
        # the ladder's rungs.
        responses, _, _ = run_once()
        for response in responses:
            if response.tier is not None:
                assert response.tier in ("exact", "relative", "additive")
            if response.ok:
                assert response.engine is not None
                assert response.value == pytest.approx(response.value)
