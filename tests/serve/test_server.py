"""Behavioural tests of the :class:`repro.serve.Server` driver.

Every test runs on the virtual clock: admission, shedding, degradation,
retries, breaker trips, expiry, and shutdown all replay from scripted
workloads, and the ``serve.*`` counters must account for every request.
"""

import pytest

from repro import obs
from repro.runtime import faults
from repro.serve import (
    CircuitBreaker,
    DegradationLadder,
    RetryPolicy,
    ServeRequest,
    Server,
)
from repro.util.errors import ResourceError

from tests.serve.conftest import QUERY


def serve(db, requests, recorder=None, **kwargs):
    """Run one scripted batch on a fresh virtual-clock server."""
    kwargs.setdefault("scheduler", faults.VirtualScheduler(default_tick=0.001))
    server = Server(db, **kwargs)
    if recorder is None:
        recorder = obs.StatsRecorder()
    with obs.use(recorder):
        responses = server.run(requests)
    return server, responses, recorder.summary()["counters"]


def check_accounting(counters):
    """The two invariants every serving run must satisfy."""
    submitted = counters.get("serve.submitted", 0)
    admitted = counters.get("serve.admitted", 0)
    rejected = counters.get("serve.rejected", 0)
    shed = counters.get("serve.shed", 0)
    completed = counters.get("serve.completed", 0)
    failed = counters.get("serve.failed", 0)
    assert submitted == admitted + rejected + shed
    assert admitted == completed + failed


class TestBatchServing:
    def test_mixed_batch_completes_and_accounts(self, db):
        requests = [
            ServeRequest(
                id=f"q{i}",
                query=QUERY,
                tenant="a" if i % 2 == 0 else "b",
                deadline=5.0,
                seed=i,
            )
            for i in range(6)
        ]
        server, responses, counters = serve(
            db, requests, pool_size=2, queue_capacity=4
        )
        assert len(responses) == 6
        by_code = {}
        for response in responses:
            by_code.setdefault(response.code, []).append(response)
        # Capacity 4: two of the six simultaneous arrivals are shed.
        assert len(by_code["ok"]) == 4
        assert len(by_code["overloaded"]) == 2
        values = {response.value for response in by_code["ok"]}
        assert len(values) == 1  # same query, same exact answer
        check_accounting(counters)
        assert counters["serve.shed"] == 2
        assert counters["serve.completed"] == 4
        # Per-tenant mirrors account for the same totals.
        for tenant in ("a", "b"):
            assert counters[f"serve.tenant.{tenant}.submitted"] == 3

    def test_every_request_gets_exactly_one_response(self, db):
        requests = [
            ServeRequest(id=f"q{i}", query=QUERY, seed=i) for i in range(8)
        ]
        _, responses, counters = serve(
            db, requests, pool_size=2, queue_capacity=16
        )
        assert sorted(r.id for r in responses) == sorted(r.id for r in requests)
        check_accounting(counters)

    def test_invalid_request_is_structured_not_raised(self, db):
        requests = [
            ServeRequest(id="bad", query=QUERY, epsilon=2.0),
            ServeRequest(id="good", query=QUERY),
        ]
        _, responses, counters = serve(db, requests)
        by_id = {response.id: response for response in responses}
        assert by_id["bad"].code == "invalid"
        assert "epsilon" in by_id["bad"].detail
        assert by_id["good"].ok
        assert counters["serve.rejected"] == 1
        check_accounting(counters)

    def test_unparseable_query_is_invalid(self, db):
        _, responses, counters = serve(
            db, [ServeRequest(id="q", query="exists exists x.")]
        )
        assert responses[0].code == "invalid"
        check_accounting(counters)


class TestAdmissionControl:
    def test_cost_refused_when_no_engine_fits(self, db):
        # exact alone cannot fit in a 2-world cap on this database.
        request = ServeRequest(
            id="q", query=QUERY, chain=("exact",), max_cost=2
        )
        _, responses, counters = serve(db, [request])
        assert responses[0].code == "cost_refused"
        assert "exact" in responses[0].detail
        assert counters["serve.rejected"] == 1
        check_accounting(counters)

    def test_deadline_unmeetable_is_refused_up_front(self, db):
        request = ServeRequest(id="q", query=QUERY, deadline=1e-9)
        _, responses, counters = serve(db, [request])
        assert responses[0].code == "deadline_unmeetable"
        assert "deadline" in responses[0].detail
        check_accounting(counters)

    def test_shutdown_rejects_new_work(self, db):
        scheduler = faults.VirtualScheduler(default_tick=0.001)
        server = Server(db, scheduler=scheduler)
        with obs.use(obs.StatsRecorder()) :
            first = server.run([ServeRequest(id="before", query=QUERY)])
            assert first[0].ok
            server.shutdown()
            assert server.draining
            second = server.run([ServeRequest(id="after", query=QUERY)])
        assert second[0].code == "shutdown"

    def test_pool_and_queue_bounds_are_validated(self, db):
        with pytest.raises(ResourceError):
            Server(db, pool_size=0)
        with pytest.raises(ResourceError):
            Server(db, queue_capacity=0)


class TestDegradationLadderInService:
    def test_tier_degrades_with_depth_and_recovers_after_drain(self, db):
        # Six simultaneous arrivals walk the ladder; a seventh arrives
        # after the backlog has drained and is admitted at full strength.
        requests = [
            ServeRequest(
                id=f"q{i}", query=QUERY, seed=i,
                epsilon=0.3, delta=0.3,
            )
            for i in range(6)
        ] + [
            ServeRequest(
                id="late", query=QUERY, seed=99, arrival=60.0,
                epsilon=0.3, delta=0.3,
            )
        ]
        _, responses, counters = serve(
            db,
            requests,
            pool_size=1,
            queue_capacity=12,
            ladder=DegradationLadder(relative_at=2, additive_at=4),
        )
        tiers = {response.id: response.tier for response in responses}
        assert [tiers[f"q{i}"] for i in range(6)] == [
            "exact",
            "exact",
            "relative",
            "relative",
            "additive",
            "additive",
        ]
        # The tier was fixed at admission and never changed mid-flight;
        # once the burst drained, admissions recovered full strength.
        assert tiers["late"] == "exact"
        assert counters["serve.degraded"] == 4
        assert all(response.ok for response in responses)
        # Degraded admissions shed the expensive enumeration engine, but
        # QUERY is statically safe: the dichotomy router keeps the
        # polynomial safe_lifted tier through degradation, so degraded
        # requests answer exactly *cheaper* than a sampler would.
        for response in responses:
            if tiers[response.id] != "exact":
                assert response.engine == "safe_lifted"
                assert "exact" not in [a[0] for a in response.attempts]
        check_accounting(counters)


class TestRetriesAndBreaker:
    def test_transient_fault_retries_and_succeeds(self, db):
        request = ServeRequest(
            id="r1", query=QUERY, chain=("exact",), deadline=10.0
        )
        with faults.inject(
            {"exact": faults.ScheduledFault(fault=faults.TimeoutFault(), at=(0,))}
        ):
            _, responses, counters = serve(
                db,
                [request],
                pool_size=1,
                retry=RetryPolicy(max_retries=2, base_delay=0.1),
            )
        response = responses[0]
        assert response.ok
        assert response.retries == 1
        assert response.attempts == (
            ("exact", "budget_exceeded"),
            ("exact", "ok"),
        )
        assert counters["serve.retries"] == 1
        assert counters["serve.completed"] == 1
        check_accounting(counters)

    def test_permanent_failure_does_not_retry(self, db):
        # A cost refusal at execution time (past the admission dry run)
        # is permanent: fallback exhausts and no retry is attempted.
        from repro.util.errors import CostRefused

        request = ServeRequest(id="perm", query=QUERY, chain=("exact",))
        with faults.inject(
            {
                "exact": faults.ExceptionFault(
                    error=CostRefused("engine woke up grumpy", 2, 1)
                )
            }
        ):
            _, responses, counters = serve(
                db, [request], retry=RetryPolicy(max_retries=3)
            )
        assert responses[0].code == "exhausted"
        assert responses[0].retries == 0
        assert "serve.retries" not in counters
        check_accounting(counters)

    def test_breaker_trips_and_later_requests_route_around(self, db):
        # The first two failures open safe_lifted's breaker; the next
        # two requests skip straight to a healthy engine.
        requests = [
            ServeRequest(id=f"b{i}", query=QUERY, deadline=10.0, seed=i)
            for i in range(4)
        ]
        with faults.inject(
            {
                "safe_lifted": faults.ScheduledFault(
                    fault=faults.TimeoutFault(), at=(0, 1, 2)
                )
            }
        ):
            server, responses, counters = serve(
                db,
                requests,
                pool_size=1,
                retry=RetryPolicy(max_retries=0),
                breaker=CircuitBreaker(threshold=2, cooldown=0.5),
            )
        assert [response.code for response in responses] == ["ok"] * 4
        assert [response.attempts[0][0] for response in responses] == [
            "safe_lifted",
            "safe_lifted",
            "exact",
            "exact",
        ]
        trips = [
            t for t in server.breaker.transitions if t[2:] == ("closed", "open")
        ]
        assert len(trips) == 1 and trips[0][1] == "safe_lifted"
        check_accounting(counters)

    def test_breaker_open_fails_request_that_cannot_wait(self, db):
        # exact is the only admissible engine and its breaker opens on
        # the first request; the second cannot outlive the cooldown.
        requests = [
            ServeRequest(
                id=f"o{i}", query=QUERY, chain=("exact",), deadline=2.0, seed=i
            )
            for i in range(2)
        ]
        with faults.inject({"exact": faults.TimeoutFault()}):
            _, responses, counters = serve(
                db,
                requests,
                pool_size=1,
                retry=RetryPolicy(max_retries=0),
                breaker=CircuitBreaker(threshold=1, cooldown=30.0),
            )
        by_id = {response.id: response for response in responses}
        assert by_id["o0"].code == "exhausted"
        assert by_id["o1"].code == "breaker_open"
        assert counters["serve.failed"] == 2
        check_accounting(counters)

    def test_breaker_heals_and_requeued_ticket_launches(self, db):
        # o1 arrives while exact's breaker is open but its deadline
        # covers the cooldown: it parks in the backlog, wakes at the
        # probe window, and succeeds once the fault schedule clears.
        requests = [
            ServeRequest(
                id="o0", query=QUERY, chain=("exact",), deadline=10.0, seed=0
            ),
            ServeRequest(
                id="o1", query=QUERY, chain=("exact",), deadline=10.0, seed=1,
                arrival=0.05,
            ),
        ]
        with faults.inject(
            {"exact": faults.ScheduledFault(fault=faults.TimeoutFault(), at=(0,))}
        ):
            server, responses, counters = serve(
                db,
                requests,
                pool_size=1,
                retry=RetryPolicy(max_retries=0),
                breaker=CircuitBreaker(threshold=1, cooldown=0.5),
            )
        by_id = {response.id: response for response in responses}
        assert by_id["o0"].code == "exhausted"
        assert by_id["o1"].ok
        states = [t[2:] for t in server.breaker.transitions]
        assert ("closed", "open") in states
        assert ("half_open", "closed") in states
        check_accounting(counters)


class TestDeadlines:
    def test_urgent_request_launches_first(self, db):
        # Same tenant, simultaneous arrival, one worker: the fair-share
        # pick is earliest-deadline-first, so the tight deadline jumps
        # ahead of the loose one regardless of submission order.
        requests = [
            ServeRequest(id="loose", query=QUERY, deadline=50.0, seed=0),
            ServeRequest(id="tight", query=QUERY, deadline=0.5, seed=1),
        ]
        _, responses, counters = serve(db, requests, pool_size=1)
        assert [response.id for response in responses] == ["tight", "loose"]
        assert all(response.ok for response in responses)
        check_accounting(counters)

    def test_deadline_expires_in_backlog(self, db):
        # q0 stalls the single worker for a virtual second; q1 arrives
        # behind it, its deadline passes while queued, and it never
        # launches.
        requests = [
            ServeRequest(id="q0", query=QUERY, deadline=5.0, seed=0),
            ServeRequest(
                id="q1", query=QUERY, deadline=0.3, seed=1, arrival=0.1
            ),
        ]
        with faults.inject({"safe_lifted": faults.SlowdownFault(seconds=1.0)}):
            _, responses, counters = serve(db, requests, pool_size=1)
        by_id = {response.id: response for response in responses}
        assert by_id["q0"].ok
        assert by_id["q1"].code == "deadline_expired"
        assert by_id["q1"].attempts == ()  # never launched
        assert counters["serve.expired"] == 1
        check_accounting(counters)
