"""Shared fixtures for the serve scheduler suite.

Everything here runs on the :class:`~repro.runtime.faults.VirtualScheduler`
(virtual clock, lock-step workers), so every test is deterministic and
wall-clock independent.
"""

import pytest

from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

#: The standard small safe query over the fixture database.
QUERY = "exists x. exists y. E(x, y) & S(y)"


@pytest.fixture
def db():
    return random_unreliable_database(
        make_rng(1), size=4, relations={"E": 2, "S": 1}, density=0.5
    )
