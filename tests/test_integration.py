"""End-to-end integration: the full audit workflow across subsystems.

Walks the complete story a user of the library lives through —
calibrate an error model from audits, analyze a query, rank fragile
facts, plan verifications, condition on their outcomes — asserting
cross-module consistency at each step.
"""

from fractions import Fraction

import pytest

from repro import (
    Atom,
    FOQuery,
    StructureBuilder,
    UnreliableDatabase,
    analyze,
    most_fragile_atoms,
    reliability,
    truth_probability,
)
from repro.logic.algebra import rel
from repro.logic.conjunctive import ConjunctiveQuery
from repro.reliability.answers import (
    answer_probabilities,
    most_questionable_answers,
    reliability_from_answers,
)
from repro.reliability.calibration import AuditRecord, calibrated_database
from repro.reliability.lifted import is_safe, lifted_probability
from repro.reliability.repair import (
    greedy_verification_plan,
    verify_and_correct,
)
from repro.util.rng import make_rng


@pytest.fixture
def raw_structure():
    builder = StructureBuilder(["s1", "s2", "s3", "p1", "p2"])
    builder.relation("Supplies", 2).relation("Audited", 1)
    builder.add("Supplies", ("s1", "p1"))
    builder.add("Supplies", ("s2", "p1")).add("Supplies", ("s2", "p2"))
    builder.add("Audited", ("s1",)).add("Audited", ("s2",))
    return builder.build()


@pytest.fixture
def query():
    return FOQuery("exists s p. Audited(s) & Supplies(s, p)")


class TestFullWorkflow:
    def test_calibrate_analyze_plan_condition(self, raw_structure, query):
        # 1. Calibrate mu from an audit sample.
        audits = [
            AuditRecord(Atom("Supplies", ("s1", "p1")), True),
            AuditRecord(Atom("Supplies", ("s3", "p2")), False),
            AuditRecord(Atom("Audited", ("s3",)), False),
        ]
        db = calibrated_database(
            raw_structure, audits, default_rate=Fraction(1, 10)
        )
        # Audited atoms are pinned; the rest carry smoothed rates.
        assert db.mu(Atom("Supplies", ("s1", "p1"))) == 0
        assert 0 < db.mu(Atom("Supplies", ("s2", "p1"))) < 1

        # 2. Analyze dispatches and the value agrees with reliability().
        report = analyze(db, query)
        assert report.is_exact
        assert report.exact == reliability(db, query)

        # 3. The probabilistic answer table folds back to the same value.
        table = answer_probabilities(db, query)
        assert reliability_from_answers(db, query, table) == report.exact

        # 4. Influence ranking and verification planning are consistent:
        #    every planned atom must be a relevant uncertain atom.
        fragile = most_fragile_atoms(db, query.formula)
        plan = greedy_verification_plan(db, query, budget=2)
        uncertain = set(db.uncertain_atoms())
        assert all(atom in uncertain for atom, _score in fragile)
        assert all(atom in uncertain for atom, _gain in plan)

        # 5. Conditioning on a verified outcome changes the value the
        #    way Bayes says it should.
        if plan:
            atom, _gain = plan[0]
            nu = db.nu(atom)
            after = nu * truth_probability(
                verify_and_correct(db, atom, True), query
            ) + (1 - nu) * truth_probability(
                verify_and_correct(db, atom, False), query
            )
            assert after == truth_probability(db, query)

    def test_algebra_lifted_exact_triangle(self, raw_structure):
        db = UnreliableDatabase(
            raw_structure,
            {
                Atom("Supplies", ("s2", "p2")): Fraction(1, 3),
                Atom("Audited", ("s2",)): Fraction(1, 4),
                Atom("Audited", ("s1",)): Fraction(1, 5),
            },
        )
        # The same query through three front doors:
        expression = (
            rel("Audited", "s").join(rel("Supplies", "s", "p")).project("p")
        )
        cq = ConjunctiveQuery.from_text(
            "exists s p. Audited(s) & Supplies(s, p)"
        )
        fo = FOQuery("exists s p. Audited(s) & Supplies(s, p)")

        assert is_safe(cq)
        lifted = lifted_probability(db, cq)
        grounded = truth_probability(db, fo, method="dnf")
        enumerated = truth_probability(db, fo, method="worlds")
        assert lifted == grounded == enumerated

        # The algebra expression answers identically on the observed db.
        assert bool(expression.rows(db.structure)) == fo.evaluate(
            db.structure, ()
        )

    def test_estimators_agree_with_exact_on_workflow_db(
        self, raw_structure, query
    ):
        db = UnreliableDatabase(
            raw_structure,
            {atom: Fraction(1, 6) for atom in raw_structure.atoms()},
        )
        exact = float(reliability(db, query))
        from repro.reliability.approx import reliability_additive
        from repro.reliability.padding import padded_reliability

        additive = reliability_additive(db, query, 0.05, 0.05, make_rng(1))
        padded = padded_reliability(db, query, 0.1, 0.1, make_rng(2))
        assert abs(additive.value - exact) <= 0.05
        assert abs(padded.value - exact) <= 0.1
