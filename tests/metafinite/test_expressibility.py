"""Tests for the Section 6 expressibility result: reliability as a query."""

from fractions import Fraction

import pytest

from repro.logic.evaluator import FOQuery
from repro.metafinite.expressibility import (
    ERROR_PREFIX,
    ID_FUNCTION,
    TRUTH_PREFIX,
    metafinite_encoding,
    reliability_term,
)
from repro.reliability.exact import reliability
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database


class TestEncoding:
    def test_functions_present(self, triangle_db):
        encoded = metafinite_encoding(triangle_db)
        names = set(encoded.function_names())
        assert TRUTH_PREFIX + "E" in names
        assert ERROR_PREFIX + "E" in names
        assert TRUTH_PREFIX + "S" in names
        assert ID_FUNCTION in names

    def test_truth_matches_structure(self, triangle_db):
        encoded = metafinite_encoding(triangle_db)
        assert encoded.value(TRUTH_PREFIX + "E", ("a", "b")) == 1
        assert encoded.value(TRUTH_PREFIX + "E", ("b", "a")) == 0

    def test_error_matches_mu(self, triangle_db):
        encoded = metafinite_encoding(triangle_db)
        assert encoded.value(ERROR_PREFIX + "E", ("a", "b")) == Fraction(1, 4)
        assert encoded.value(ERROR_PREFIX + "E", ("b", "c")) == 0

    def test_id_injective(self, triangle_db):
        encoded = metafinite_encoding(triangle_db)
        ids = {
            encoded.value(ID_FUNCTION, (element,))
            for element in triangle_db.structure.universe
        }
        assert len(ids) == len(triangle_db.structure.universe)


class TestReliabilityTerm:
    @pytest.mark.parametrize(
        "source,free",
        [
            ("E(x, y)", ("x", "y")),
            ("E(x, y) & S(y)", ("x", "y")),
            ("S(x) | ~E(x, x)", ("x",)),
            ("E(x, y) -> S(x)", ("x", "y")),
            ("(S(x) <-> S(y)) & E(x, y)", ("x", "y")),
            ("E(x, y) & x != y", ("x", "y")),
        ],
    )
    def test_term_value_equals_relational_reliability(
        self, triangle_db, source, free
    ):
        query = FOQuery(source, free)
        compiled = reliability_term(query)
        encoded = metafinite_encoding(triangle_db)
        assert compiled.evaluate(encoded, ()) == reliability(
            triangle_db, query
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_random_databases(self, seed):
        rng = make_rng(seed)
        db = random_unreliable_database(
            rng,
            size=3,
            relations={"E": 2, "S": 1},
            density=0.4,
            error_choices=["1/4", "1/3", "0"],
        )
        query = FOQuery("E(x, y) & S(y)", ("x", "y"))
        compiled = reliability_term(query)
        assert compiled.evaluate(metafinite_encoding(db), ()) == reliability(
            db, query
        )

    def test_boolean_qf_query(self, triangle_db):
        query = FOQuery("E('a', 'b') | S('c')")
        compiled = reliability_term(query)
        assert compiled.evaluate(metafinite_encoding(triangle_db), ()) == (
            reliability(triangle_db, query)
        )

    def test_quantified_query_rejected(self):
        with pytest.raises(QueryError):
            reliability_term(FOQuery("exists x. S(x)"))

    def test_compiled_term_is_fixed_size(self, triangle_db):
        # The term depends on the query only, not on the database: the
        # same compiled object serves databases of any size.
        query = FOQuery("E(x, y) & S(y)", ("x", "y"))
        compiled = reliability_term(query)
        rng = make_rng(9)
        bigger = random_unreliable_database(
            rng, size=5, relations={"E": 2, "S": 1}, error="1/8"
        )
        assert compiled.evaluate(metafinite_encoding(bigger), ()) == (
            reliability(bigger, query)
        )
