"""Tests for second-order metafinite terms (Theorem 6.2(iii))."""

from fractions import Fraction

import pytest

from repro.logic.terms import Var
from repro.metafinite.database import (
    FunctionalDatabase,
    UnreliableFunctionalDatabase,
)
from repro.metafinite.so_terms import (
    SOMetafiniteQuery,
    evaluate_so_term,
    so_aggregate,
)
from repro.metafinite.terms import aggregate, apply_op, func, num
from repro.util.errors import QueryError


@pytest.fixture
def fdb():
    return FunctionalDatabase(
        ("a", "b"),
        {"w": {("a",): 2, ("b",): 3}},
    )


class TestSOAggregate:
    def test_sum_over_all_unary_relations(self, fdb):
        # sum_S sum_x S(x) over all S : A -> {0,1}: each element is 1 in
        # half of the 4 relations -> total = 4.
        term = so_aggregate(
            "sum", "S", 1, aggregate("sum", ["x"], func("S", "x"))
        )
        assert evaluate_so_term(fdb, term, {}) == 4

    def test_max_as_existential_so_quantifier(self, fdb):
        # max_S [sum_x S(x) * w(x) >= 5] == exists S with weight >= 5.
        body = apply_op(
            "geq",
            aggregate(
                "sum", ["x"], apply_op("mul", func("S", "x"), func("w", "x"))
            ),
            num(5),
        )
        term = so_aggregate("max", "S", 1, body)
        assert evaluate_so_term(fdb, term, {}) == 1
        # No sub-multiset of {2, 3} reaches 6.
        body6 = apply_op(
            "geq",
            aggregate(
                "sum", ["x"], apply_op("mul", func("S", "x"), func("w", "x"))
            ),
            num(6),
        )
        assert evaluate_so_term(fdb, so_aggregate("max", "S", 1, body6), {}) == 0

    def test_min_dual(self, fdb):
        # min_S [sum_x S(x) >= 0] == forall S: trivially 1.
        body = apply_op("geq", aggregate("sum", ["x"], func("S", "x")), num(0))
        assert evaluate_so_term(fdb, so_aggregate("min", "S", 1, body), {}) == 1

    def test_subset_sum_count(self, fdb):
        # sum_S [weight(S) == 5] counts subsets of {2, 3} summing to 5:
        # exactly one (both elements).
        body = apply_op(
            "eq",
            aggregate(
                "sum", ["x"], apply_op("mul", func("S", "x"), func("w", "x"))
            ),
            num(5),
        )
        assert evaluate_so_term(fdb, so_aggregate("sum", "S", 1, body), {}) == 1

    def test_nested_so_aggregates(self, fdb):
        # sum_S sum_T 1 = 4 * 4 = 16 (via constant body).
        term = so_aggregate(
            "sum", "S", 1, so_aggregate("sum", "T", 1, num(1))
        )
        assert evaluate_so_term(fdb, term, {}) == 16

    def test_name_clash_rejected(self, fdb):
        term = so_aggregate("sum", "w", 1, num(1))
        with pytest.raises(QueryError):
            evaluate_so_term(fdb, term, {})

    def test_bad_operation_rejected(self):
        with pytest.raises(QueryError):
            so_aggregate("median", "S", 1, num(1))

    def test_zero_arity_rejected(self):
        with pytest.raises(QueryError):
            so_aggregate("sum", "S", 0, num(1))


class TestSOQueryProtocol:
    def test_boolean_query(self, fdb):
        body = apply_op(
            "geq",
            aggregate(
                "sum", ["x"], apply_op("mul", func("S", "x"), func("w", "x"))
            ),
            num(5),
        )
        query = SOMetafiniteQuery(so_aggregate("max", "S", 1, body))
        assert query.arity == 0
        assert query.evaluate(fdb, ()) == 1

    def test_reliability_of_so_query(self, fdb):
        # Subset-sum threshold query on an unreliable weight function:
        # w(b) is 3 or 1 with equal probability; "exists subset with
        # weight >= 5" holds iff w(b) = 3, so reliability = 1/2.
        udb = UnreliableFunctionalDatabase(
            fdb, {("w", ("b",)): {3: "1/2", 1: "1/2"}}
        )
        body = apply_op(
            "geq",
            aggregate(
                "sum", ["x"], apply_op("mul", func("S", "x"), func("w", "x"))
            ),
            num(5),
        )
        query = SOMetafiniteQuery(so_aggregate("max", "S", 1, body))
        from repro.metafinite.reliability import metafinite_reliability

        assert metafinite_reliability(udb, query) == Fraction(1, 2)

    def test_unary_answers(self, fdb):
        # For each x: does some relation contain exactly x?  Trivially 1.
        body = func("S", "x")
        query = SOMetafiniteQuery(
            so_aggregate("max", "S", 1, body), free_order=("x",)
        )
        answers = query.answers(fdb)
        assert answers == {("a",): 1, ("b",): 1}
