"""Tests for metafinite reliability (Theorem 6.2)."""

from fractions import Fraction

import pytest

from repro.metafinite.database import (
    FunctionalDatabase,
    UnreliableFunctionalDatabase,
)
from repro.metafinite.reliability import (
    estimate_metafinite_reliability,
    metafinite_expected_error,
    metafinite_reliability,
    metafinite_reliability_qf,
)
from repro.metafinite.terms import MetafiniteQuery, aggregate, apply_op, func, num
from repro.util.errors import QueryError
from repro.util.rng import make_rng


@pytest.fixture
def udb():
    observed = FunctionalDatabase(
        ("a", "b"),
        {"w": {("a",): 3, ("b",): 5}},
    )
    return UnreliableFunctionalDatabase(
        observed,
        {
            ("w", ("a",)): {3: "1/2", 4: "1/2"},
            ("w", ("b",)): {5: "3/4", 6: "1/4"},
        },
    )


class TestExactEngines:
    def test_sum_query_error_probability(self, udb):
        # Sum differs from 8 unless both readings stay put: P = 1/2 * 3/4.
        query = MetafiniteQuery(aggregate("sum", ["x"], func("w", "x")))
        assert metafinite_expected_error(udb, query) == 1 - Fraction(3, 8)
        assert metafinite_reliability(udb, query) == Fraction(3, 8)

    def test_max_query_more_robust(self, udb):
        # max = 5 unless w(b) jumps to 6: P(wrong) = 1/4.
        query = MetafiniteQuery(aggregate("max", ["x"], func("w", "x")))
        assert metafinite_reliability(udb, query) == Fraction(3, 4)

    def test_unary_query_reliability(self, udb):
        # Per-element error: a differs w.p. 1/2, b w.p. 1/4; H = 3/4.
        query = MetafiniteQuery(func("w", "x"), ["x"])
        assert metafinite_expected_error(udb, query) == Fraction(3, 4)
        assert metafinite_reliability(udb, query) == 1 - Fraction(3, 8)

    def test_qf_engine_matches_general(self, udb):
        query = MetafiniteQuery(
            apply_op("mul", func("w", "x"), num(2)), ["x"]
        )
        fast = metafinite_reliability_qf(udb, query)
        general = metafinite_reliability(udb, query)
        assert fast == general

    def test_qf_engine_rejects_aggregates(self, udb):
        query = MetafiniteQuery(aggregate("sum", ["x"], func("w", "x")))
        with pytest.raises(QueryError):
            metafinite_reliability_qf(udb, query)

    def test_constant_query_fully_reliable(self, udb):
        query = MetafiniteQuery(num(42))
        assert metafinite_reliability(udb, query) == 1

    def test_robust_aggregate_fully_reliable(self, udb):
        # min(w) is 3 in every world (w(a) in {3,4}, w(b) in {5,6})?  No:
        # w(a) can be 4, so min is 3 or 4.  Use a threshold query instead:
        # count of readings >= 3 is always 2.
        query = MetafiniteQuery(
            aggregate("count", ["x"], apply_op("geq", func("w", "x"), num(3)))
        )
        assert metafinite_reliability(udb, query) == 1

    def test_qf_engine_scales_past_world_enumeration(self):
        # 24 uncertain unary entries: 2^24 worlds, but the QF engine looks
        # at one entry per tuple.
        rng = make_rng(5)
        names = tuple(f"s{i}" for i in range(24))
        observed = FunctionalDatabase(
            names, {"w": {(s,): 10 for s in names}}
        )
        udb = UnreliableFunctionalDatabase(
            observed,
            {("w", (s,)): {10: "9/10", 11: "1/10"} for s in names},
        )
        query = MetafiniteQuery(func("w", "x"), ["x"])
        assert metafinite_reliability_qf(udb, query) == Fraction(9, 10)


class TestMonteCarlo:
    def test_tracks_exact(self, udb):
        rng = make_rng(8)
        query = MetafiniteQuery(aggregate("sum", ["x"], func("w", "x")))
        exact = float(metafinite_reliability(udb, query))
        estimate = estimate_metafinite_reliability(
            udb, query, rng, samples=8000
        )
        assert abs(estimate - exact) < 0.02

    def test_unary_query(self, udb):
        rng = make_rng(9)
        query = MetafiniteQuery(func("w", "x"), ["x"])
        exact = float(metafinite_reliability(udb, query))
        estimate = estimate_metafinite_reliability(
            udb, query, rng, samples=8000
        )
        assert abs(estimate - exact) < 0.02

    def test_default_budget(self, udb):
        rng = make_rng(10)
        query = MetafiniteQuery(num(1))
        assert (
            estimate_metafinite_reliability(
                udb, query, rng, epsilon=0.2, delta=0.2
            )
            == 1.0
        )
