"""Tests for metafinite terms and their evaluation."""

from fractions import Fraction

import pytest

from repro.metafinite.database import FunctionalDatabase
from repro.metafinite.evaluator import evaluate_term
from repro.metafinite.terms import (
    MetafiniteQuery,
    aggregate,
    apply_op,
    func,
    is_aggregate_free,
    num,
    term_free_variables,
)
from repro.logic.terms import Var
from repro.util.errors import EvaluationError, QueryError


@pytest.fixture
def fdb():
    return FunctionalDatabase(
        ("a", "b", "c"),
        {
            "w": {("a",): 3, ("b",): 5, ("c",): 2},
            "d": {
                (x, y): (0 if x == y else 1)
                for x in ("a", "b", "c")
                for y in ("a", "b", "c")
            },
        },
    )


class TestEvaluation:
    def test_constant(self, fdb):
        assert evaluate_term(fdb, num(7), {}) == 7

    def test_function_application(self, fdb):
        term = func("w", "x")
        assert evaluate_term(fdb, term, {Var("x"): "b"}) == 5

    def test_unbound_variable_raises(self, fdb):
        with pytest.raises(EvaluationError):
            evaluate_term(fdb, func("w", "x"), {})

    def test_arithmetic(self, fdb):
        term = apply_op("add", func("w", "x"), num(10))
        assert evaluate_term(fdb, term, {Var("x"): "a"}) == 13

    def test_division_exact(self, fdb):
        term = apply_op("div", num(1), num(3))
        assert evaluate_term(fdb, term, {}) == Fraction(1, 3)

    def test_division_by_zero(self, fdb):
        with pytest.raises(EvaluationError):
            evaluate_term(fdb, apply_op("div", num(1), num(0)), {})

    def test_comparisons_return_01(self, fdb):
        assert evaluate_term(fdb, apply_op("lt", num(1), num(2)), {}) == 1
        assert evaluate_term(fdb, apply_op("geq", num(1), num(2)), {}) == 0

    def test_boolean_ops(self, fdb):
        term = apply_op("and", num(1), apply_op("not", num(0)))
        assert evaluate_term(fdb, term, {}) == 1

    def test_ite(self, fdb):
        term = apply_op("ite", apply_op("lt", func("w", "x"), num(4)), num(1), num(-1))
        assert evaluate_term(fdb, term, {Var("x"): "a"}) == 1
        assert evaluate_term(fdb, term, {Var("x"): "b"}) == -1

    def test_unknown_operation_rejected(self):
        with pytest.raises(QueryError):
            apply_op("frobnicate", num(1))


class TestAggregates:
    def test_sum(self, fdb):
        term = aggregate("sum", ["x"], func("w", "x"))
        assert evaluate_term(fdb, term, {}) == 10

    def test_prod(self, fdb):
        term = aggregate("prod", ["x"], func("w", "x"))
        assert evaluate_term(fdb, term, {}) == 30

    def test_min_max(self, fdb):
        assert evaluate_term(fdb, aggregate("min", ["x"], func("w", "x")), {}) == 2
        assert evaluate_term(fdb, aggregate("max", ["x"], func("w", "x")), {}) == 5

    def test_count(self, fdb):
        term = aggregate("count", ["x"], apply_op("geq", func("w", "x"), num(3)))
        assert evaluate_term(fdb, term, {}) == 2

    def test_avg_exact(self, fdb):
        term = aggregate("avg", ["x"], func("w", "x"))
        assert evaluate_term(fdb, term, {}) == Fraction(10, 3)

    def test_nested_aggregates(self, fdb):
        # sum_x max_y d(x, y) = 1 + 1 + 1.
        term = aggregate("sum", ["x"], aggregate("max", ["y"], func("d", "x", "y")))
        assert evaluate_term(fdb, term, {}) == 3

    def test_max_as_existential_quantifier(self, fdb):
        # max_x [w(x) >= 5] == "exists x. w(x) >= 5" coded as 0/1.
        term = aggregate("max", ["x"], apply_op("geq", func("w", "x"), num(5)))
        assert evaluate_term(fdb, term, {}) == 1
        term = aggregate("max", ["x"], apply_op("geq", func("w", "x"), num(6)))
        assert evaluate_term(fdb, term, {}) == 0

    def test_multi_variable_binding(self, fdb):
        term = aggregate("sum", ["x", "y"], func("d", "x", "y"))
        assert evaluate_term(fdb, term, {}) == 6

    def test_empty_block_rejected(self):
        with pytest.raises(QueryError):
            aggregate("sum", [], num(1))

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            aggregate("median", ["x"], num(1))


class TestStructural:
    def test_free_variables(self):
        term = aggregate("sum", ["y"], func("d", "x", "y"))
        assert term_free_variables(term) == {Var("x")}

    def test_is_aggregate_free(self):
        assert is_aggregate_free(apply_op("add", func("w", "x"), num(1)))
        assert not is_aggregate_free(aggregate("sum", ["x"], func("w", "x")))


class TestMetafiniteQuery:
    def test_boolean_query_value(self, fdb):
        query = MetafiniteQuery(aggregate("sum", ["x"], func("w", "x")))
        assert query.arity == 0
        assert query.evaluate(fdb, ()) == 10

    def test_unary_answers(self, fdb):
        query = MetafiniteQuery(func("w", "x"), ["x"])
        assert query.answers(fdb) == {("a",): 3, ("b",): 5, ("c",): 2}

    def test_free_order_mismatch_rejected(self):
        with pytest.raises(QueryError):
            MetafiniteQuery(func("w", "x"), ["z"])

    def test_arity_mismatch_rejected(self, fdb):
        query = MetafiniteQuery(func("w", "x"), ["x"])
        with pytest.raises(QueryError):
            query.evaluate(fdb, ())
