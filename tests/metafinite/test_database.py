"""Tests for functional databases and their unreliable variant."""

from fractions import Fraction

import pytest

from repro.metafinite.database import (
    FunctionalDatabase,
    UnreliableFunctionalDatabase,
    ValueDistribution,
)
from repro.util.errors import ProbabilityError, VocabularyError
from repro.util.rng import make_rng


@pytest.fixture
def fdb():
    return FunctionalDatabase(
        ("a", "b"),
        {
            "f": {("a",): 1, ("b",): 2},
            "g": {("a", "a"): 0, ("a", "b"): 1, ("b", "a"): 1, ("b", "b"): 0},
            "c": {(): 10},
        },
    )


class TestFunctionalDatabase:
    def test_lookup(self, fdb):
        assert fdb.value("f", ("a",)) == 1
        assert fdb.value("g", ("a", "b")) == 1
        assert fdb.value("c", ()) == 10

    def test_arities(self, fdb):
        assert fdb.arity("f") == 1
        assert fdb.arity("g") == 2
        assert fdb.arity("c") == 0

    def test_partial_function_rejected(self):
        with pytest.raises(VocabularyError):
            FunctionalDatabase(("a", "b"), {"f": {("a",): 1}})

    def test_foreign_argument_rejected(self):
        with pytest.raises(VocabularyError):
            FunctionalDatabase(("a",), {"f": {("z",): 1}})

    def test_unknown_function_rejected(self, fdb):
        with pytest.raises(VocabularyError):
            fdb.value("missing", ())

    def test_with_entry_functional_update(self, fdb):
        updated = fdb.with_entry("f", ("a",), 99)
        assert updated.value("f", ("a",)) == 99
        assert fdb.value("f", ("a",)) == 1

    def test_entries_deterministic(self, fdb):
        assert list(fdb.entries()) == list(fdb.entries())

    def test_equality_and_hash(self, fdb):
        clone = FunctionalDatabase(
            ("a", "b"),
            {
                "f": {("a",): 1, ("b",): 2},
                "g": {
                    ("a", "a"): 0,
                    ("a", "b"): 1,
                    ("b", "a"): 1,
                    ("b", "b"): 0,
                },
                "c": {(): 10},
            },
        )
        assert fdb == clone
        assert hash(fdb) == hash(clone)


class TestValueDistribution:
    def test_must_sum_to_one(self):
        with pytest.raises(ProbabilityError):
            ValueDistribution({1: Fraction(1, 2)})

    def test_zero_probabilities_dropped(self):
        dist = ValueDistribution({1: Fraction(1), 2: Fraction(0)})
        assert dist.support() == (1,)
        assert dist.is_deterministic()

    def test_probability_lookup(self):
        dist = ValueDistribution({1: "1/4", 2: "3/4"})
        assert dist.probability(1) == Fraction(1, 4)
        assert dist.probability(99) == 0

    def test_sampling_matches_distribution(self):
        rng = make_rng(3)
        dist = ValueDistribution({0: Fraction(1, 4), 1: Fraction(3, 4)})
        draws = [dist.sample(rng) for _ in range(4000)]
        assert 0.70 <= sum(draws) / len(draws) <= 0.80


class TestUnreliableFunctionalDatabase:
    def test_default_distribution_is_observed(self, fdb):
        udb = UnreliableFunctionalDatabase(fdb)
        dist = udb.distribution("f", ("a",))
        assert dist.is_deterministic()
        assert dist.support() == (1,)

    def test_worlds_sum_to_one(self, fdb):
        udb = UnreliableFunctionalDatabase(
            fdb,
            {
                ("f", ("a",)): {1: "1/2", 5: "1/2"},
                ("c", ()): {10: "2/3", 11: "1/3"},
            },
        )
        worlds = list(udb.worlds())
        assert len(worlds) == 4
        assert sum(p for _w, p in worlds) == 1

    def test_support_size(self, fdb):
        udb = UnreliableFunctionalDatabase(
            fdb, {("f", ("a",)): {1: "1/2", 2: "1/4", 3: "1/4"}}
        )
        assert udb.support_size() == 3

    def test_deterministic_override_applied_to_all_worlds(self, fdb):
        udb = UnreliableFunctionalDatabase(
            fdb,
            {
                ("f", ("a",)): {42: 1},
                ("f", ("b",)): {2: "1/2", 3: "1/2"},
            },
        )
        for world, _p in udb.worlds():
            assert world.value("f", ("a",)) == 42

    def test_unknown_entry_rejected(self, fdb):
        with pytest.raises(VocabularyError):
            UnreliableFunctionalDatabase(fdb, {("f", ("z",)): {1: 1}})

    def test_sample_respects_certainty(self, fdb):
        rng = make_rng(4)
        udb = UnreliableFunctionalDatabase(fdb)
        assert udb.sample(rng) == fdb
