"""Property-based tests (hypothesis) for the core invariants.

The strategies build small random DNFs, structures and unreliable
databases; the properties are the exact identities the paper's
definitions guarantee.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic.evaluator import FOQuery
from repro.logic.normalform import to_nnf, to_prenex, matrix_to_dnf
from repro.logic.parser import parse
from repro.propositional.counting import (
    probability_enumerate,
    probability_exact,
)
from repro.propositional.formula import DNF, Clause, Literal
from repro.relational.atoms import Atom
from repro.relational.schema import Vocabulary
from repro.relational.structure import Structure
from repro.reliability.exact import expected_error, truth_probability
from repro.reliability.space import world_granularity, worlds
from repro.reliability.unreliable import UnreliableDatabase

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

variables = st.sampled_from(["p", "q", "r", "s", "t"])
literals = st.builds(Literal, variables, st.booleans())
clauses = st.builds(Clause, st.lists(literals, min_size=1, max_size=3))
dnfs = st.builds(DNF, st.lists(clauses, min_size=0, max_size=5))

probabilities = st.builds(
    Fraction,
    st.integers(min_value=0, max_value=8),
    st.just(8),
)


@st.composite
def weighted_dnfs(draw):
    dnf = draw(dnfs)
    probs = {v: draw(probabilities) for v in dnf.variables}
    return dnf, probs


UNIVERSE = ("a", "b")
VOCAB = Vocabulary([("E", 2), ("S", 1)])
ALL_ATOMS = tuple(
    Atom("E", (x, y)) for x in UNIVERSE for y in UNIVERSE
) + tuple(Atom("S", (x,)) for x in UNIVERSE)


@st.composite
def unreliable_dbs(draw):
    rows_e = draw(st.frozensets(st.tuples(st.sampled_from(UNIVERSE), st.sampled_from(UNIVERSE))))
    rows_s = draw(st.frozensets(st.tuples(st.sampled_from(UNIVERSE))))
    structure = Structure(VOCAB, UNIVERSE, {"E": rows_e, "S": rows_s})
    mu = {}
    for atom in draw(st.frozensets(st.sampled_from(ALL_ATOMS), max_size=4)):
        mu[atom] = draw(probabilities)
    return UnreliableDatabase(structure, mu)


# ---------------------------------------------------------------------- #
# propositional properties
# ---------------------------------------------------------------------- #


@given(weighted_dnfs())
@settings(max_examples=60, deadline=None)
def test_exact_probability_matches_enumeration(case):
    dnf, probs = case
    assert probability_exact(dnf, probs) == probability_enumerate(dnf, probs)


@given(weighted_dnfs())
@settings(max_examples=60, deadline=None)
def test_probability_in_unit_interval(case):
    dnf, probs = case
    p = probability_exact(dnf, probs)
    assert 0 <= p <= 1


@given(weighted_dnfs())
@settings(max_examples=40, deadline=None)
def test_restriction_law_of_total_probability(case):
    dnf, probs = case
    if not dnf.variables:
        return
    variable = sorted(dnf.variables, key=repr)[0]
    p = probs[variable]
    conditioned = p * probability_exact(dnf.restrict(variable, True), probs) + (
        1 - p
    ) * probability_exact(dnf.restrict(variable, False), probs)
    assert conditioned == probability_exact(dnf, probs)


@given(dnfs, dnfs)
@settings(max_examples=40, deadline=None)
def test_union_bound(left, right):
    probs = {
        v: Fraction(1, 2) for v in (set(left.variables) | set(right.variables))
    }
    union = probability_exact(left.or_with(right), probs)
    assert union <= probability_exact(left, probs) + probability_exact(
        right, probs
    )
    assert union >= max(
        probability_exact(left, probs), probability_exact(right, probs)
    )


# ---------------------------------------------------------------------- #
# normal-form properties
# ---------------------------------------------------------------------- #

FORMULA_POOL = [
    "E(x, y) -> S(x)",
    "~(E(x, y) & ~S(y))",
    "exists z. E(x, z) | ~S(z)",
    "forall z. E(z, z) -> S(z)",
    "~forall z. exists w. E(z, w)",
    "(exists z. S(z)) <-> E(x, x)",
]


@given(st.sampled_from(FORMULA_POOL), st.data())
@settings(max_examples=60, deadline=None)
def test_normal_forms_preserve_semantics(source, data):
    from repro.logic.fo import Exists, Forall, free_variables
    from repro.logic.evaluator import evaluate

    formula = parse(source)
    rows_e = data.draw(
        st.frozensets(
            st.tuples(st.sampled_from(UNIVERSE), st.sampled_from(UNIVERSE))
        )
    )
    rows_s = data.draw(st.frozensets(st.tuples(st.sampled_from(UNIVERSE))))
    structure = Structure(VOCAB, UNIVERSE, {"E": rows_e, "S": rows_s})
    env = {
        var: data.draw(st.sampled_from(UNIVERSE), label=var.name)
        for var in free_variables(formula)
    }

    nnf = to_nnf(formula)
    assert evaluate(structure, formula, dict(env)) == evaluate(
        structure, nnf, dict(env)
    )

    prefix, matrix = to_prenex(formula)
    rebuilt = matrix_to_dnf(matrix)
    for kind, var in reversed(prefix):
        rebuilt = (
            Exists((var,), rebuilt) if kind == "exists" else Forall((var,), rebuilt)
        )
    assert evaluate(structure, formula, dict(env)) == evaluate(
        structure, rebuilt, dict(env)
    )


# ---------------------------------------------------------------------- #
# reliability properties
# ---------------------------------------------------------------------- #


@given(unreliable_dbs())
@settings(max_examples=40, deadline=None)
def test_world_probabilities_sum_to_one(db):
    assert sum(p for _w, p in worlds(db)) == 1


@given(unreliable_dbs())
@settings(max_examples=40, deadline=None)
def test_granularity_clears_denominators(db):
    g = world_granularity(db)
    for _world, p in worlds(db):
        assert (p * g).denominator == 1


@given(unreliable_dbs(), st.sampled_from(
    [
        "exists x y. E(x, y) & S(y)",
        "exists x. S(x) & ~E(x, x)",
        "forall x. S(x)",
    ]
))
@settings(max_examples=30, deadline=None)
def test_truth_probability_engines_agree(db, source):
    auto = truth_probability(db, source)
    enumerated = truth_probability(db, source, method="worlds")
    assert auto == enumerated
    assert 0 <= auto <= 1


@given(unreliable_dbs())
@settings(max_examples=30, deadline=None)
def test_expected_error_additivity_over_tuples(db):
    from repro.reliability.exact import wrong_probability
    from itertools import product

    query = FOQuery("E(x, y) | S(x)", ("x", "y"))
    total = sum(
        wrong_probability(db, query, args)
        for args in product(UNIVERSE, repeat=2)
    )
    assert expected_error(db, query) == total


@given(unreliable_dbs())
@settings(max_examples=30, deadline=None)
def test_complement_symmetry(db):
    # Wrong(psi) and Wrong(~psi) are the same event.
    from repro.reliability.exact import wrong_probability

    positive = wrong_probability(db, "exists x. S(x)")
    negative = wrong_probability(db, "~exists x. S(x)")
    assert positive == negative
