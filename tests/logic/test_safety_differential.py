"""Differential harness for the static dichotomy classifier.

Three independent implementations of the Dalvi-Suciu safety test are
run against each other over a large randomised family of self-join-free
Boolean CQs:

* :func:`repro.logic.safety.classify_dichotomy` — the production
  router's static classifier (the one the executor trusts);
* :func:`repro.logic.safety.hierarchy_oracle` — a brute-force check of
  the textbook hierarchy definition over raw variable-name sets,
  sharing no code with the classifier;
* :func:`repro.reliability.lifted.is_hierarchical` — the lifted
  engine's own guard.

Exact (not statistical) agreement is required on every case.  For every
*safe* verdict the harness additionally runs the lifted plan on a
random small database and demands the answer be bit-identical — exact
``Fraction`` equality — to an independent exact engine, so a safe
verdict really does mean "the polynomial plan returns the exact
answer".

``SAFETY_DIFF_SEEDS`` (environment) replays an explicit seed window —
the CI ``dichotomy-differential`` lane uses it to pin a fixed window
while letting developers widen the sweep locally, mirroring the
``RACE_STRESS_SEEDS`` idiom.
"""

import os
import random
from fractions import Fraction

import pytest

from repro.logic.conjunctive import ConjunctiveQuery
from repro.logic.fo import atom
from repro.logic.safety import (
    SafeVerdict,
    UnsafeVerdict,
    classify_dichotomy,
    hierarchy_oracle,
)
from repro.logic.terms import Const, Var
from repro.reliability.exact import truth_probability
from repro.reliability.lifted import is_hierarchical, lifted_probability
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

# The generator draws from a fixed pool of relations (self-join-freeness
# is guaranteed by sampling *distinct* relations per query).
RELATION_POOL = (("R", 1), ("S", 2), ("T", 1), ("U", 2), ("V", 3), ("W", 1))
VARIABLES = ("x", "y", "z", "w")
CONSTANTS = ("a", "b")
# Above this many uncertain atoms, cross-check against grounded Shannon
# expansion instead of full world enumeration (both are exact).
WORLDS_LIMIT = 12


def _seeds():
    raw = os.environ.get("SAFETY_DIFF_SEEDS", "")
    if raw.strip():
        return [int(token) for token in raw.replace(",", " ").split()]
    # >= 300 random CQs per ISSUE acceptance; 320 leaves headroom.
    return list(range(320))


def random_sjf_cq(rng):
    """A random self-join-free Boolean CQ (no equality atoms).

    Every atom uses a distinct relation, arguments are variables with an
    occasional constant, and the head is empty — exactly the fragment
    the dichotomy theorem speaks about.
    """
    count = rng.randint(1, 4)
    body = []
    for name, arity in rng.sample(RELATION_POOL, count):
        args = []
        for _ in range(arity):
            if rng.random() < 0.15:
                args.append(Const(rng.choice(CONSTANTS)))
            else:
                args.append(Var(rng.choice(VARIABLES)))
        body.append(atom(name, *args))
    return ConjunctiveQuery(head=(), body=body)


def _variable_sets(cq):
    return [
        frozenset(t.name for t in a.args if isinstance(t, Var))
        for a in cq.body
    ]


def _random_db_for(cq, rng):
    relations = {a.relation: len(a.args) for a in cq.body}
    return random_unreliable_database(
        rng,
        size=3,
        relations=relations,
        density=0.4,
        uncertain_fraction=0.8,
        error_choices=["1/4", "1/3", "1/5", "0"],
    )


class TestThreeWayAgreement:
    """classify_dichotomy == hierarchy_oracle == lifted.is_hierarchical."""

    @pytest.mark.parametrize("seed", _seeds())
    def test_classifiers_agree_exactly(self, seed):
        rng = random.Random(seed)
        cq = random_sjf_cq(rng)
        verdict = classify_dichotomy(cq)
        oracle = hierarchy_oracle(_variable_sets(cq))
        engine = is_hierarchical(cq)
        assert verdict.safe == oracle == engine, str(cq.to_formula())
        if not verdict.safe:
            # Self-join-free by construction: the only possible unsafe
            # reason inside the fragment is the hard one.
            assert verdict.reason == "non_hierarchical"
            assert verdict.hard

    def test_generator_covers_both_sides_of_the_dichotomy(self):
        # Always over the default window: this pins a property of the
        # *generator*, independent of any SAFETY_DIFF_SEEDS replay.
        verdicts = [
            classify_dichotomy(random_sjf_cq(random.Random(seed)))
            for seed in range(320)
        ]
        safe = sum(1 for v in verdicts if v.safe)
        unsafe = len(verdicts) - safe
        assert len(verdicts) >= 300
        assert safe >= 30 and unsafe >= 30, (safe, unsafe)


class TestSafeVerdictsAreExact:
    """A safe verdict means the lifted plan is bit-identical to exact."""

    @pytest.mark.parametrize("seed", _seeds())
    def test_safe_plan_matches_exact_engine(self, seed):
        rng = random.Random(seed)
        cq = random_sjf_cq(rng)
        verdict = classify_dichotomy(cq)
        if not verdict.safe:
            pytest.skip("unsafe draw: no plan to check")
        db = _random_db_for(cq, make_rng(seed))
        lifted = lifted_probability(db, cq)
        method = (
            "worlds" if len(db.uncertain_atoms()) <= WORLDS_LIMIT else "dnf"
        )
        exact = truth_probability(db, cq.to_formula(), method=method)
        assert isinstance(lifted, Fraction)
        assert lifted == exact, str(cq.to_formula())


class TestVerdictWitnesses:
    """Anchors: witnesses on canonical queries are checkable."""

    def test_h0_hard_witness_violates_hierarchy(self):
        # H0 = exists x y. R(x) & S(x, y) & T(y) — the hard pattern.
        verdict = classify_dichotomy("exists x. exists y. R(x) & S(x, y) & T(y)")
        assert isinstance(verdict, UnsafeVerdict)
        assert verdict.reason == "non_hierarchical" and verdict.hard
        atoms_x, atoms_y = verdict.occurrences
        sx, sy = set(atoms_x), set(atoms_y)
        assert sx & sy
        assert not (sx <= sy or sy <= sx)

    def test_safe_verdict_carries_the_plan(self):
        verdict = classify_dichotomy("exists x. exists y. R(x) & S(x, y)")
        assert isinstance(verdict, SafeVerdict)
        rendered = verdict.plan.render()
        assert "project" in rendered and "S(x, y)" in rendered

    def test_oracle_matches_textbook_examples(self):
        assert hierarchy_oracle([frozenset("x"), frozenset("xy")])
        assert hierarchy_oracle([frozenset("x"), frozenset("y")])
        assert not hierarchy_oracle(
            [frozenset("x"), frozenset("xy"), frozenset("y")]
        )
