"""Tests for the relational algebra layer and its FO compilation."""

from fractions import Fraction

import pytest

from repro.logic.algebra import rel
from repro.relational.builder import StructureBuilder
from repro.reliability.exact import reliability
from repro.reliability.unreliable import uniform_error
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_structure


@pytest.fixture
def store():
    builder = StructureBuilder(["a", "b", "c", "p1", "p2"])
    builder.relation("Ordered", 2)
    builder.relation("Vip", 1)
    builder.add("Ordered", ("a", "p1"))
    builder.add("Ordered", ("a", "p2"))
    builder.add("Ordered", ("b", "p1"))
    builder.add("Vip", ("a",))
    builder.add("Vip", ("c",))
    return builder.build()


class TestOperators:
    def test_scan(self, store):
        expr = rel("Ordered", "customer", "product")
        assert expr.rows(store) == {("a", "p1"), ("a", "p2"), ("b", "p1")}

    def test_select_constant(self, store):
        expr = rel("Ordered", "customer", "product").select(product="p1")
        assert expr.rows(store) == {("a", "p1"), ("b", "p1")}

    def test_select_column_pair(self, store):
        expr = rel("Ordered", "c1", "c2").select_eq("c1", "c2")
        assert expr.rows(store) == set()

    def test_project_reorders(self, store):
        expr = rel("Ordered", "customer", "product").project(
            "product", "customer"
        )
        assert ("p1", "a") in expr.rows(store)

    def test_project_deduplicates(self, store):
        expr = rel("Ordered", "customer", "product").project("customer")
        assert expr.rows(store) == {("a",), ("b",)}

    def test_rename(self, store):
        expr = rel("Vip", "customer").rename(customer="vip")
        assert expr.schema == ("vip",)
        assert expr.rows(store) == {("a",), ("c",)}

    def test_natural_join(self, store):
        orders = rel("Ordered", "customer", "product")
        vips = rel("Vip", "customer")
        joined = vips.join(orders)
        assert joined.schema == ("customer", "product")
        assert joined.rows(store) == {("a", "p1"), ("a", "p2")}

    def test_join_without_shared_columns_is_product(self, store):
        left = rel("Vip", "v")
        right = rel("Vip", "w")
        assert left.join(right).rows(store) == {
            (x, y) for x in ("a", "c") for y in ("a", "c")
        }

    def test_product_requires_disjoint(self, store):
        with pytest.raises(QueryError):
            rel("Vip", "x").product(rel("Vip", "x"))

    def test_union_difference(self, store):
        vips = rel("Vip", "customer")
        buyers = rel("Ordered", "customer", "product").project("customer")
        assert vips.union(buyers).rows(store) == {("a",), ("b",), ("c",)}
        assert vips.difference(buyers).rows(store) == {("c",)}

    def test_schema_mismatch_rejected(self, store):
        with pytest.raises(QueryError):
            rel("Vip", "x").union(rel("Ordered", "c", "p"))

    def test_unknown_column_rejected(self, store):
        with pytest.raises(QueryError):
            rel("Vip", "customer").select(nope=1)
        with pytest.raises(QueryError):
            rel("Vip", "customer").project("nope")


class TestFOCompilation:
    EXPRESSIONS = [
        lambda: rel("Ordered", "c", "p"),
        lambda: rel("Ordered", "c", "p").select(p="p1"),
        lambda: rel("Ordered", "c", "p").project("c"),
        lambda: rel("Vip", "c").join(rel("Ordered", "c", "p")),
        lambda: rel("Vip", "c").join(rel("Ordered", "c", "p")).project("p"),
        lambda: rel("Vip", "c").union(
            rel("Ordered", "c", "p").project("c")
        ),
        lambda: rel("Vip", "c").difference(
            rel("Ordered", "c", "p").project("c")
        ),
        lambda: rel("Ordered", "c1", "p").rename(c1="c").select_eq("c", "c"),
        lambda: rel("Vip", "v").product(rel("Vip", "w")),
    ]

    @pytest.mark.parametrize("make", EXPRESSIONS)
    def test_compiled_query_agrees_with_direct_evaluation(self, store, make):
        expr = make()
        query = expr.to_fo_query()
        assert query.answers(store) == expr.rows(store)

    @pytest.mark.parametrize("make", EXPRESSIONS)
    def test_agreement_on_random_structures(self, make):
        structure = random_structure(
            make_rng(5), 4, {"Ordered": 2, "Vip": 1}, density=0.4
        )
        expr = make()
        # Guard: selections mention constant 'p1' which this universe
        # lacks; the agreement must still hold (empty on both sides).
        assert expr.to_fo_query().answers(structure) == expr.rows(structure)

    def test_reliability_of_algebra_query(self, store):
        db = uniform_error(store, Fraction(1, 10))
        expr = rel("Vip", "c").join(rel("Ordered", "c", "p")).project("c")
        via_fo = reliability(db, expr.to_fo_query())
        # The expression itself implements the query protocol, so the
        # world-enumeration engine accepts it directly; with 16 uncertain
        # atoms (2 relations over 5 elements is 30) that is too big, so
        # compare through the compiled form only on the DNF path.
        assert 0 < via_fo <= 1

    def test_expression_implements_query_protocol(self, store):
        expr = rel("Vip", "c")
        assert expr.arity == 1
        assert expr.evaluate(store, ("a",))
        assert not expr.evaluate(store, ("b",))
        assert expr.answers(store) == {("a",), ("c",)}
