"""Tests for Datalog fact rules and module-entry smoke checks."""

import subprocess
import sys

import pytest

from repro.logic.datalog import DatalogProgram, DatalogQuery
from repro.relational.builder import graph_structure
from repro.util.errors import QueryError


@pytest.fixture
def chain():
    return graph_structure([0, 1, 2], [(0, 1), (1, 2)])


class TestFactRules:
    def test_ground_fact(self, chain):
        program = DatalogProgram.parse("Seed(0).\nT(x) :- Seed(x).\nT(y) :- T(x), E(x, y).")
        assert DatalogQuery(program, "T").answers(chain) == {(0,), (1,), (2,)}

    def test_multiple_facts(self, chain):
        program = DatalogProgram.parse("P(0).\nP(2).")
        assert DatalogQuery(program, "P").answers(chain) == {(0,), (2,)}

    def test_fact_with_variable_is_unsafe(self):
        with pytest.raises(QueryError):
            DatalogProgram.parse("P(x).")

    def test_facts_feed_negation_strata(self, chain):
        program = DatalogProgram.parse(
            """
            Special(1).
            Plain(x) :- E(x, y), not Special(x).
            Plain(y) :- E(x, y), not Special(y).
            """
        )
        assert DatalogQuery(program, "Plain").answers(chain) == {(0,), (2,)}


class TestModuleEntry:
    def test_python_dash_m_repro_help(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "compute" in completed.stdout
        assert "analyze" in completed.stdout

    def test_python_dash_m_repro_compute(self, tmp_path):
        from repro.relational.encoding import encode_unreliable_database
        from repro.reliability.unreliable import UnreliableDatabase
        from repro.relational.builder import StructureBuilder
        from repro.relational.atoms import Atom

        builder = StructureBuilder([1, 2])
        builder.relation("P", 1).add("P", (1,))
        db = UnreliableDatabase(builder.build(), {Atom("P", (1,)): "1/4"})
        path = tmp_path / "db.txt"
        path.write_text(encode_unreliable_database(db))
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "compute", str(path), "exists x. P(x)"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "3/4" in completed.stdout
