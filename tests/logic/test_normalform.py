"""Tests for NNF, prenex form and DNF matrices.

Semantic preservation is checked by evaluating original and transformed
formulas on concrete structures across all assignments.
"""

from itertools import product as iproduct

import pytest

from repro.logic.evaluator import evaluate
from repro.logic.fo import (
    And,
    AtomF,
    Exists,
    Forall,
    Not,
    Or,
    exists,
    forall,
    free_variables,
)
from repro.logic.normalform import (
    dnf_clauses,
    eliminate_arrows,
    existential_parts,
    matrix_to_dnf,
    matrix_width,
    to_nnf,
    to_prenex,
)
from repro.logic.parser import parse
from repro.logic.terms import Var
from repro.relational.builder import StructureBuilder
from repro.util.errors import QueryError


@pytest.fixture
def world():
    builder = StructureBuilder([0, 1, 2])
    builder.relation("E", 2).relation("S", 1)
    builder.add("E", (0, 1)).add("E", (1, 2)).add("E", (2, 0)).add("S", (1,))
    return builder.build()


def assert_equivalent(world, original, transformed):
    """Check semantic equivalence over all assignments to free variables."""
    free = sorted(free_variables(original))
    assert free == sorted(free_variables(transformed))
    for values in iproduct(world.universe, repeat=len(free)):
        env = dict(zip(free, values))
        assert evaluate(world, original, dict(env)) == evaluate(
            world, transformed, dict(env)
        ), f"disagree at {env}"


SAMPLES = [
    "A := E(x, y) -> S(x)",
    "A := E(x, y) <-> S(y)",
    "A := ~(E(x, y) & ~S(x))",
    "A := ~exists z. E(x, z)",
    "A := forall z. E(z, z) | S(z)",
    "A := exists z. ~forall w. E(z, w) -> S(w)",
    "A := (exists z. E(x, z)) & (forall z. S(z) -> E(z, x))",
    "A := ~(~S(x) | ~S(y))",
]


def _formula(sample):
    return parse(sample.split(":=", 1)[1].strip())


class TestNNF:
    @pytest.mark.parametrize("sample", SAMPLES)
    def test_preserves_semantics(self, world, sample):
        original = _formula(sample)
        assert_equivalent(world, original, to_nnf(original))

    @pytest.mark.parametrize("sample", SAMPLES)
    def test_negations_only_on_atoms(self, sample):
        def check(node):
            if isinstance(node, Not):
                assert isinstance(node.sub, AtomF) or node.sub.__class__.__name__ == "Eq"
                return
            for attr in ("subs",):
                for sub in getattr(node, attr, ()):
                    check(sub)
            if hasattr(node, "sub") and not isinstance(node, Not):
                check(node.sub)
            for attr in ("left", "right"):
                if hasattr(node, attr):
                    check(getattr(node, attr))

        check(to_nnf(_formula(sample)))


class TestPrenex:
    @pytest.mark.parametrize("sample", SAMPLES)
    def test_preserves_semantics(self, world, sample):
        original = _formula(sample)
        prefix, matrix = to_prenex(original)
        rebuilt = matrix
        for kind, var in reversed(prefix):
            rebuilt = (
                Exists((var,), rebuilt)
                if kind == "exists"
                else Forall((var,), rebuilt)
            )
        assert_equivalent(world, original, rebuilt)

    def test_matrix_is_quantifier_free(self):
        _prefix, matrix = to_prenex(
            parse("exists x. (forall y. E(x, y)) & S(x)")
        )

        def no_quantifiers(node):
            assert not isinstance(node, (Exists, Forall))
            for sub in getattr(node, "subs", ()):
                no_quantifiers(sub)
            if isinstance(node, Not):
                no_quantifiers(node.sub)

        no_quantifiers(matrix)

    def test_shadowed_variables_renamed_apart(self, world):
        # The same bound name in two scopes must not collide.
        original = parse("(exists x. S(x)) & (exists x. E(x, x))")
        prefix, _matrix = to_prenex(original)
        names = [var.name for _kind, var in prefix]
        assert len(names) == len(set(names))


class TestDNF:
    @pytest.mark.parametrize("sample", SAMPLES)
    def test_matrix_dnf_equivalent(self, world, sample):
        original = _formula(sample)
        prefix, matrix = to_prenex(original)
        dnf = matrix_to_dnf(matrix)
        rebuilt = dnf
        for kind, var in reversed(prefix):
            rebuilt = (
                Exists((var,), rebuilt)
                if kind == "exists"
                else Forall((var,), rebuilt)
            )
        assert_equivalent(world, original, rebuilt)

    def test_dnf_shape(self):
        matrix = to_nnf(parse("(A(x) | B(x)) & (C(x) | D(x))"))
        dnf = matrix_to_dnf(matrix)
        clauses = dnf_clauses(dnf)
        assert len(clauses) == 4
        assert matrix_width(dnf) == 2

    def test_width_of_single_literal(self):
        assert matrix_width(parse("A(x)")) == 1


class TestExistentialParts:
    def test_decomposes(self):
        variables, dnf = existential_parts(
            parse("exists x y. E(x, y) & S(y)")
        )
        assert [v.name for v in variables] == ["x", "y"]
        assert matrix_width(dnf) == 2

    def test_negated_forall_is_existential(self):
        variables, _dnf = existential_parts(parse("~forall x. S(x)"))
        assert len(variables) == 1

    def test_universal_rejected(self):
        with pytest.raises(QueryError):
            existential_parts(parse("forall x. S(x)"))
