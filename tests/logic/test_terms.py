"""Tests for first-order terms."""

import pytest

from repro.logic.terms import Const, Var, substitute_term, term_value
from repro.util.errors import EvaluationError


class TestTerms:
    def test_var_equality(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_const_holds_any_value(self):
        assert Const(3).value == 3
        assert Const(("a", 1)).value == ("a", 1)

    def test_term_value_const(self):
        assert term_value(Const("a"), {}) == "a"

    def test_term_value_var(self):
        assert term_value(Var("x"), {Var("x"): 7}) == 7

    def test_term_value_unbound_raises(self):
        with pytest.raises(EvaluationError):
            term_value(Var("x"), {})

    def test_substitute_term(self):
        binding = {Var("x"): Const(1)}
        assert substitute_term(Var("x"), binding) == Const(1)
        assert substitute_term(Var("y"), binding) == Var("y")
        assert substitute_term(Const(9), binding) == Const(9)

    def test_vars_sort_by_name(self):
        assert sorted([Var("b"), Var("a")]) == [Var("a"), Var("b")]
