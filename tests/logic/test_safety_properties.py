"""Property-based invariants of the static dichotomy classifier.

Safety of a self-join-free Boolean CQ is a property of its *variable
occurrence structure* alone, so the verdict must be invariant under
every transformation that preserves that structure:

* reordering the body atoms,
* bijectively renaming the variables,
* substituting constants for other constants.

Hypothesis drives randomised CQs through each transformation and pins
the verdict (safe/unsafe and, in-fragment, the reason).  Unsafe
``non_hierarchical`` verdicts additionally carry a witness — a variable
pair whose atom-occurrence sets overlap without nesting — which is
re-checked against the rendered atoms, so a hardness certificate can
never silently go stale.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.conjunctive import ConjunctiveQuery
from repro.logic.fo import atom
from repro.logic.safety import (
    SafeVerdict,
    UnsafeVerdict,
    classify_dichotomy,
)
from repro.logic.terms import Const, Var

RELATION_POOL = (("R", 1), ("S", 2), ("T", 1), ("U", 2), ("V", 3))
VARIABLES = ("x", "y", "z", "w")
CONSTANTS = ("a", "b", "c")


@st.composite
def sjf_cqs(draw):
    """Random self-join-free Boolean CQs (no equality atoms)."""
    count = draw(st.integers(min_value=1, max_value=4))
    pool = draw(
        st.permutations(RELATION_POOL).map(lambda p: p[:count])
    )
    body = []
    for name, arity in pool:
        args = []
        for _ in range(arity):
            if draw(st.booleans()) and draw(st.booleans()):
                args.append(Const(draw(st.sampled_from(CONSTANTS))))
            else:
                args.append(Var(draw(st.sampled_from(VARIABLES))))
        body.append(atom(name, *args))
    return ConjunctiveQuery(head=(), body=body)


def _rebuild(cq, term_map):
    body = [
        atom(a.relation, *[term_map(t) for t in a.args]) for a in cq.body
    ]
    return ConjunctiveQuery(head=(), body=body)


def _same_verdict(a, b):
    assert a.safe == b.safe
    if not a.safe:
        assert a.reason == b.reason


class TestStructuralInvariance:
    @given(cq=sjf_cqs(), data=st.data())
    @settings(max_examples=120, deadline=None, database=None)
    def test_atom_reordering_preserves_the_verdict(self, cq, data):
        shuffled_body = data.draw(st.permutations(list(cq.body)))
        shuffled = ConjunctiveQuery(head=(), body=shuffled_body)
        _same_verdict(classify_dichotomy(cq), classify_dichotomy(shuffled))

    @given(cq=sjf_cqs(), data=st.data())
    @settings(max_examples=120, deadline=None, database=None)
    def test_variable_renaming_preserves_the_verdict(self, cq, data):
        fresh = data.draw(
            st.permutations(["v0", "v1", "v2", "v3"])
        )
        rename = dict(zip(VARIABLES, fresh))

        def term_map(t):
            return Var(rename[t.name]) if isinstance(t, Var) else t

        _same_verdict(
            classify_dichotomy(cq), classify_dichotomy(_rebuild(cq, term_map))
        )

    @given(cq=sjf_cqs(), data=st.data())
    @settings(max_examples=120, deadline=None, database=None)
    def test_constant_substitution_preserves_the_verdict(self, cq, data):
        # Constants carry no occurrence structure: swapping them for
        # other constants (even collapsing them) cannot move a query
        # across the dichotomy.
        fresh = data.draw(
            st.lists(
                st.sampled_from(["a", "b", "c", "d"]),
                min_size=len(CONSTANTS),
                max_size=len(CONSTANTS),
            )
        )
        remap = dict(zip(CONSTANTS, fresh))

        def term_map(t):
            return Const(remap[t.value]) if isinstance(t, Const) else t

        _same_verdict(
            classify_dichotomy(cq), classify_dichotomy(_rebuild(cq, term_map))
        )


class TestWitnessSoundness:
    @given(cq=sjf_cqs())
    @settings(max_examples=200, deadline=None, database=None)
    def test_hard_witness_violates_hierarchy_when_rechecked(self, cq):
        verdict = classify_dichotomy(cq)
        if verdict.safe:
            assert isinstance(verdict, SafeVerdict)
            # The plan covers every atom of the query exactly once.
            rendered = verdict.plan.render()
            for a in dict.fromkeys(cq.body):
                assert str(a) in rendered
            return
        assert isinstance(verdict, UnsafeVerdict)
        assert verdict.reason == "non_hierarchical"
        x, y = verdict.witness[0], verdict.witness[1]
        assert x != y
        atoms_x, atoms_y = (set(s) for s in verdict.occurrences)
        # The certificate: occurrence sets overlap without nesting...
        assert atoms_x & atoms_y
        assert not (atoms_x <= atoms_y or atoms_y <= atoms_x)
        # ...and each named atom really contains its variable.
        for name, rendered_atoms in ((x, atoms_x), (y, atoms_y)):
            for text in rendered_atoms:
                matching = [
                    a
                    for a in cq.body
                    if str(a) == text
                    and any(
                        isinstance(t, Var) and t.name == name
                        for t in a.args
                    )
                ]
                assert matching, (name, text)
