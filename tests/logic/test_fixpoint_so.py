"""Tests for fixed-point queries and brute-force second-order evaluation."""

import pytest

from repro.logic.datalog import reachability_query
from repro.logic.fixpoint import FixpointQuery
from repro.logic.so import SOExists, SOForall, SOQuery, three_colourability
from repro.relational.builder import graph_structure
from repro.util.errors import QueryError


@pytest.fixture
def chain():
    return graph_structure([0, 1, 2, 3], [(0, 1), (1, 2), (2, 3)])


class TestFixpoint:
    def test_transitive_closure_matches_datalog(self, chain):
        fixpoint = FixpointQuery(
            "E(x, y) | (exists z. X(x, z) & E(z, y))",
            fixpoint_relation="X",
            free_order=("x", "y"),
        )
        assert fixpoint.answers(chain) == reachability_query().answers(chain)

    def test_evaluate_tuple(self, chain):
        fixpoint = FixpointQuery(
            "E(x, y) | (exists z. X(x, z) & E(z, y))",
            fixpoint_relation="X",
            free_order=("x", "y"),
        )
        assert fixpoint.evaluate(chain, (0, 3))
        assert not fixpoint.evaluate(chain, (1, 0))

    def test_must_mention_fixpoint_relation(self):
        with pytest.raises(QueryError):
            FixpointQuery("E(x, y)", fixpoint_relation="X", free_order=("x", "y"))

    def test_nullary_rejected(self):
        with pytest.raises(QueryError):
            FixpointQuery("exists x y. X(x, y) | E(x, y)", "X")

    def test_clash_with_existing_relation(self, chain):
        from repro.relational.schema import Vocabulary

        fixpoint = FixpointQuery(
            "E(x, y) | X(x, y)", fixpoint_relation="X", free_order=("x", "y")
        )
        expanded = chain.expand(Vocabulary([("X", 2)]))
        with pytest.raises(QueryError):
            fixpoint.answers(expanded)


class TestSecondOrder:
    def test_exists_relation_trivial(self, chain):
        # There exists a unary relation containing node 0: always true.
        query = SOQuery([SOExists("P", 1)], "P(x)", free_order=("x",))
        assert query.evaluate(chain, (0,))

    def test_forall_relation(self, chain):
        # For all unary P: P(0) — false (the empty P fails).
        query = SOQuery([SOForall("P", 1)], "exists x. P(x) & x = 0")
        assert not query.evaluate(chain, ())

    def test_three_colourability_on_paths_and_cliques(self):
        path = graph_structure([0, 1, 2], [(0, 1), (1, 2)], symmetric=True)
        assert three_colourability().evaluate(path, ())
        k4 = graph_structure(
            [0, 1, 2, 3],
            [(i, j) for i in range(4) for j in range(4) if i < j],
            symmetric=True,
        )
        assert not three_colourability().evaluate(k4, ())

    def test_two_colourability_even_vs_odd_cycle(self):
        # Sigma-1-1: exists C. edges go between C and its complement.
        bipartite = SOQuery(
            [SOExists("C", 1)],
            "forall x y. E(x, y) -> ~(C(x) <-> C(y))",
        )
        even = graph_structure(
            [0, 1, 2, 3], [(0, 1), (1, 2), (2, 3), (3, 0)], symmetric=True
        )
        odd = graph_structure(
            [0, 1, 2], [(0, 1), (1, 2), (2, 0)], symmetric=True
        )
        assert bipartite.evaluate(even, ())
        assert not bipartite.evaluate(odd, ())

    def test_duplicate_relation_variables_rejected(self):
        with pytest.raises(QueryError):
            SOQuery([SOExists("P", 1), SOForall("P", 1)], "P(x)", ("x",))

    def test_answers(self, chain):
        # Nodes x such that every unary P containing all E-successors of x
        # is nonempty — i.e. x has a successor.
        query = SOQuery(
            [SOExists("P", 1)],
            "exists y. E(x, y) & P(y)",
            free_order=("x",),
        )
        assert query.answers(chain) == {(0,), (1,), (2,)}
