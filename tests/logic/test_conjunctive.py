"""Tests for the conjunctive-query type."""

import pytest

from repro.logic.conjunctive import ConjunctiveQuery, hardness_query
from repro.logic.fo import atom
from repro.logic.parser import parse
from repro.relational.builder import StructureBuilder
from repro.util.errors import QueryError


@pytest.fixture
def db():
    builder = StructureBuilder(["a", "b", "c"])
    builder.relation("E", 2).relation("S", 1)
    builder.add("E", ("a", "b")).add("E", ("b", "c")).add("S", ("b",))
    return builder.build()


class TestConstruction:
    def test_direct(self):
        cq = ConjunctiveQuery(["x"], [atom("E", "x", "y"), atom("S", "y")])
        assert cq.arity == 1
        assert [v.name for v in cq.existential_variables] == ["y"]

    def test_from_text(self):
        cq = ConjunctiveQuery.from_text("exists y. E(x, y) & S(y)", ["x"])
        assert cq.arity == 1

    def test_rejects_disjunction_body(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery.from_formula(parse("exists x. S(x) | E(x, x)"))

    def test_rejects_non_atomic_parts(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([], [parse("~S(x)")])

    def test_head_variable_must_occur(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(["z"], [atom("S", "x")])

    def test_equality_and_hash(self):
        cq1 = ConjunctiveQuery(["x"], [atom("S", "x")])
        cq2 = ConjunctiveQuery(["x"], [atom("S", "x")])
        assert cq1 == cq2
        assert hash(cq1) == hash(cq2)


class TestEvaluation:
    def test_boolean(self, db):
        cq = ConjunctiveQuery.from_text("exists x y. E(x, y) & S(y)")
        assert cq.evaluate(db, ())

    def test_unary_answers(self, db):
        cq = ConjunctiveQuery.from_text("exists y. E(x, y) & S(y)", ["x"])
        assert cq.answers(db) == {("a",)}

    def test_matches_fo_query(self, db):
        cq = ConjunctiveQuery.from_text("exists y. E(x, y)", ["x"])
        assert cq.answers(db) == cq.to_fo_query().answers(db)


class TestHardnessQuery:
    def test_shape(self):
        cq = hardness_query()
        assert cq.arity == 0
        assert len(cq.body) == 4
        assert str(cq.to_formula()).startswith("exists")

    def test_detects_falsified_clause(self):
        # Structure encoding (y0 | y1) with both variables false.
        builder = StructureBuilder(["c", "y0", "y1"])
        builder.relation("L", 2).relation("R", 2).relation("S", 1)
        builder.add("L", ("c", "y0")).add("R", ("c", "y1"))
        builder.add("S", ("y0",)).add("S", ("y1",))
        db = builder.build()
        assert hardness_query().evaluate(db, ())
        # Make y0 true (drop it from S): clause satisfied.
        satisfied = db.with_relation("S", [("y1",)])
        assert not hardness_query().evaluate(satisfied, ())
