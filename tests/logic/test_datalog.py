"""Tests for the Datalog engine: parsing, safety, semi-naive evaluation."""

import pytest

from repro.logic.datalog import (
    DatalogProgram,
    DatalogQuery,
    Rule,
    head,
    lit,
    reachability_query,
)
from repro.relational.builder import StructureBuilder, graph_structure
from repro.util.errors import EvaluationError, QueryError


@pytest.fixture
def chain():
    """Directed path 0 -> 1 -> 2 -> 3."""
    return graph_structure([0, 1, 2, 3], [(0, 1), (1, 2), (2, 3)])


class TestParsing:
    def test_parse_two_rules(self):
        program = DatalogProgram.parse(
            """
            T(x, y) :- E(x, y).
            T(x, z) :- T(x, y), E(y, z).
            """
        )
        assert len(program.rules) == 2
        assert program.idb == {"T"}

    def test_parse_negation_and_comparison(self):
        program = DatalogProgram.parse(
            "Lonely(x) :- V(x), not E(x, x), x != x."
        )
        body = program.rules[0].body
        assert body[1].negated
        assert body[2].predicate == "="
        assert body[2].negated

    def test_parse_constants(self):
        program = DatalogProgram.parse("Root(x) :- E('r', x).\nN(x) :- E(3, x).")
        assert len(program.rules) == 2

    def test_comments_stripped(self):
        program = DatalogProgram.parse("T(x) :- S(x). % trailing comment")
        assert len(program.rules) == 1

    def test_bad_rule_rejected(self):
        with pytest.raises(QueryError):
            DatalogProgram.parse("this is not datalog")

    def test_str_of_rule(self):
        rule = Rule(head("T", "x"), [lit("S", "x"), lit("E", "x", "x", negated=True)])
        assert str(rule) == "T(x) :- S(x), not E(x, x)."


class TestValidation:
    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            DatalogProgram([Rule(head("T", "x", "y"), [lit("S", "x")])])

    def test_equality_with_constant_makes_safe(self):
        program = DatalogProgram.parse("T(x, y) :- S(x), y = 3.")
        assert program.idb == {"T"}

    def test_stratified_negated_idb_allowed(self):
        program = DatalogProgram.parse("T(x) :- S(x).\nU(x) :- S(x), not T(x).")
        assert program.strata["T"] == 0
        assert program.strata["U"] == 1

    def test_recursion_through_negation_rejected(self):
        with pytest.raises(QueryError):
            DatalogProgram.parse("T(x) :- S(x), not U(x).\nU(x) :- S(x), not T(x).")

    def test_self_negation_rejected(self):
        with pytest.raises(QueryError):
            DatalogProgram.parse("Win(x) :- E(x, y), not Win(y).")

    def test_mixed_arity_rejected(self):
        with pytest.raises(QueryError):
            DatalogProgram.parse("T(x) :- S(x).\nT(x, y) :- E(x, y).")

    def test_answer_predicate_must_be_idb(self):
        program = DatalogProgram.parse("T(x) :- S(x).")
        with pytest.raises(QueryError):
            DatalogQuery(program, "S")


class TestEvaluation:
    def test_transitive_closure(self, chain):
        query = reachability_query()
        expected = {(i, j) for i in range(4) for j in range(4) if i < j}
        assert query.answers(chain) == expected

    def test_evaluate_single_tuple(self, chain):
        query = reachability_query()
        assert query.evaluate(chain, (0, 3))
        assert not query.evaluate(chain, (3, 0))

    def test_cycle_reaches_everything(self):
        cycle = graph_structure([0, 1, 2], [(0, 1), (1, 2), (2, 0)])
        query = reachability_query()
        assert query.answers(cycle) == {(i, j) for i in range(3) for j in range(3)}

    def test_matches_networkx_on_random_digraph(self):
        import networkx as nx
        import random

        rng = random.Random(7)
        nodes = list(range(8))
        edges = [
            (u, v)
            for u in nodes
            for v in nodes
            if u != v and rng.random() < 0.2
        ]
        structure = graph_structure(nodes, edges)
        digraph = nx.DiGraph(edges)
        digraph.add_nodes_from(nodes)
        # transitive_closure edges are exactly the length >= 1 paths,
        # including (u, u) when u lies on a cycle — same semantics as the
        # Datalog program.
        expected = set(nx.transitive_closure(digraph).edges())
        assert reachability_query().answers(structure) == expected

    def test_negation_on_edb(self, chain):
        program = DatalogProgram.parse("Sink(x) :- E(y, x), not E(x, y).")
        query = DatalogQuery(program, "Sink")
        assert query.answers(chain) == {(1,), (2,), (3,)}

    def test_constants_in_rules(self, chain):
        program = DatalogProgram.parse("FromZero(x) :- E(0, x).")
        query = DatalogQuery(program, "FromZero")
        assert query.answers(chain) == {(1,)}

    def test_facts_via_constant_rule(self, chain):
        program = DatalogProgram.parse(
            "Seed(x) :- E(x, y), x = 0.\nT(x) :- Seed(x).\nT(y) :- T(x), E(x, y)."
        )
        query = DatalogQuery(program, "T")
        assert query.answers(chain) == {(0,), (1,), (2,), (3,)}

    def test_missing_edb_predicate_raises(self, chain):
        program = DatalogProgram.parse("T(x) :- Missing(x).")
        with pytest.raises(EvaluationError):
            DatalogQuery(program, "T").answers(chain)

    def test_mutual_recursion(self):
        # Even/odd distance from node 0 along a path.
        structure = graph_structure([0, 1, 2, 3, 4], [(0, 1), (1, 2), (2, 3), (3, 4)])
        program = DatalogProgram.parse(
            """
            Even(x) :- E(x, y), x = 0.
            Odd(y) :- Even(x), E(x, y).
            Even(y) :- Odd(x), E(x, y).
            """
        )
        even = DatalogQuery(program, "Even").answers(structure)
        odd = DatalogQuery(program, "Odd").answers(structure)
        assert even == {(0,), (2,), (4,)}
        assert odd == {(1,), (3,)}

    def test_semi_naive_agrees_with_naive_fixpoint(self, chain):
        # A brute-force naive fixpoint as oracle.
        program = DatalogProgram.parse(
            "T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), T(y, z)."
        )
        result = DatalogQuery(program, "T").answers(chain)
        edges = chain.relation("E")
        oracle = set(edges)
        changed = True
        while changed:
            changed = False
            for (a, b) in list(oracle):
                for (c, d) in list(oracle):
                    if b == c and (a, d) not in oracle:
                        oracle.add((a, d))
                        changed = True
        assert result == oracle


class TestStratifiedNegation:
    def test_unreachable_via_negated_reachability(self, chain):
        program = DatalogProgram.parse(
            """
            Reach(x, y) :- E(x, y).
            Reach(x, z) :- Reach(x, y), E(y, z).
            V(x) :- E(x, y).
            V(y) :- E(x, y).
            Unreach(x, y) :- V(x), V(y), not Reach(x, y).
            """
        )
        unreach = DatalogQuery(program, "Unreach").answers(chain)
        reach = DatalogQuery(program, "Reach").answers(chain)
        nodes = {0, 1, 2, 3}
        assert unreach == {
            (u, v) for u in nodes for v in nodes if (u, v) not in reach
        }

    def test_three_strata(self, chain):
        program = DatalogProgram.parse(
            """
            A(x) :- E(x, y).
            B(x) :- E(x, y), not A(y).
            C(x) :- A(x), not B(x).
            """
        )
        assert program.strata == {"A": 0, "B": 1, "C": 2}
        # A = nodes with out-edges = {0,1,2}; A(y) fails only for y=3, so
        # B = {x : E(x, 3)} = {2}; C = A \ B = {0, 1}.
        assert DatalogQuery(program, "A").answers(chain) == {(0,), (1,), (2,)}
        assert DatalogQuery(program, "B").answers(chain) == {(2,)}
        assert DatalogQuery(program, "C").answers(chain) == {(0,), (1,)}

    def test_stratified_program_in_reliability_engine(self, chain):
        from fractions import Fraction

        from repro.relational.atoms import Atom
        from repro.reliability.exact import wrong_probability
        from repro.reliability.unreliable import UnreliableDatabase

        program = DatalogProgram.parse(
            """
            Reach(x, y) :- E(x, y).
            Reach(x, z) :- Reach(x, y), E(y, z).
            V(x) :- E(x, y).
            V(y) :- E(x, y).
            Cut(x, y) :- V(x), V(y), not Reach(x, y).
            """
        )
        query = DatalogQuery(program, "Cut")
        db = UnreliableDatabase(chain, {Atom("E", (1, 2)): Fraction(1, 4)})
        # Cut(0, 3) holds iff the world breaks the only path, i.e. drops
        # E(1, 2): probability 1/4; observed Cut(0, 3) is false.
        assert wrong_probability(db, query, (0, 3)) == Fraction(1, 4)
