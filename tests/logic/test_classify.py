"""Tests for syntactic fragment classification."""

import pytest

from repro.logic.classify import (
    classify,
    is_conjunctive,
    is_existential,
    is_quantifier_free,
    is_universal,
)
from repro.logic.parser import parse


class TestQuantifierFree:
    @pytest.mark.parametrize(
        "source", ["E(x, y)", "E(x, y) & ~S(x)", "x = y -> S(x)", "true"]
    )
    def test_positive(self, source):
        assert is_quantifier_free(parse(source))

    @pytest.mark.parametrize(
        "source", ["exists x. S(x)", "S(x) & forall y. E(x, y)"]
    )
    def test_negative(self, source):
        assert not is_quantifier_free(parse(source))


class TestExistentialUniversal:
    def test_plain_existential(self):
        assert is_existential(parse("exists x y. E(x, y)"))

    def test_negated_universal_is_existential(self):
        assert is_existential(parse("~forall x. S(x)"))

    def test_plain_universal(self):
        assert is_universal(parse("forall x. S(x)"))

    def test_negated_existential_is_universal(self):
        assert is_universal(parse("~exists x. S(x)"))

    def test_quantifier_free_is_both(self):
        formula = parse("E(x, y)")
        assert is_existential(formula)
        assert is_universal(formula)

    def test_alternation_is_neither(self):
        formula = parse("forall x. exists y. E(x, y)")
        assert not is_existential(formula)
        assert not is_universal(formula)

    def test_hidden_alternation_through_implication(self):
        # (exists x. A(x)) -> B(y): the antecedent dualises to forall.
        formula = parse("(exists x. S(x)) -> S(y)")
        assert is_universal(formula)
        assert not is_existential(formula)


class TestConjunctive:
    def test_positive(self):
        assert is_conjunctive(parse("exists x y z. L(x, y) & R(x, z) & S(y)"))

    def test_single_atom(self):
        assert is_conjunctive(parse("exists x. S(x)"))

    def test_equality_allowed(self):
        assert is_conjunctive(parse("exists x. S(x) & x = 'a'"))

    def test_disjunction_rejected(self):
        assert not is_conjunctive(parse("exists x. S(x) | E(x, x)"))

    def test_negation_rejected(self):
        assert not is_conjunctive(parse("exists x. ~S(x)"))


class TestClassify:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("E(x, y) & S(x)", "quantifier-free"),
            ("exists x. E(x, x) & S(x)", "conjunctive"),
            ("exists x. E(x, x) | S(x)", "existential"),
            ("forall x. S(x)", "universal"),
            ("forall x. exists y. E(x, y)", "first-order"),
        ],
    )
    def test_labels(self, source, expected):
        assert classify(parse(source)) == expected
