"""Tests for the first-order AST and smart constructors."""

import pytest

from repro.logic.fo import (
    BOTTOM,
    TOP,
    And,
    AtomF,
    Bottom,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    atom,
    conj,
    disj,
    exists,
    forall,
    formula_size,
    free_variables,
    instantiate,
    neg,
    relations_used,
    substitute,
)
from repro.logic.terms import Const, Var
from repro.util.errors import QueryError


class TestSmartConstructors:
    def test_atom_promotes_strings_to_vars(self):
        a = atom("E", "x", "y")
        assert a.args == (Var("x"), Var("y"))

    def test_atom_wraps_values_as_constants(self):
        a = atom("E", "x", 3)
        assert a.args == (Var("x"), Const(3))

    def test_conj_flattens(self):
        a, b, c = atom("A", "x"), atom("B", "x"), atom("C", "x")
        combined = conj(conj(a, b), c)
        assert isinstance(combined, And)
        assert combined.subs == (a, b, c)

    def test_conj_absorbs_constants(self):
        a = atom("A", "x")
        assert conj(a, TOP) == a
        assert conj(a, BOTTOM) == BOTTOM
        assert conj() == TOP

    def test_disj_flattens_and_absorbs(self):
        a, b = atom("A", "x"), atom("B", "x")
        combined = disj(disj(a, b), BOTTOM)
        assert isinstance(combined, Or)
        assert combined.subs == (a, b)
        assert disj(a, TOP) == TOP
        assert disj() == BOTTOM

    def test_neg_double_negation(self):
        a = atom("A", "x")
        assert neg(neg(a)) == a
        assert neg(TOP) == BOTTOM
        assert neg(BOTTOM) == TOP

    def test_exists_merges_blocks(self):
        a = atom("E", "x", "y")
        nested = exists(["x"], exists(["y"], a))
        assert isinstance(nested, Exists)
        assert nested.variables == (Var("x"), Var("y"))

    def test_forall_merges_blocks(self):
        a = atom("E", "x", "y")
        nested = forall(["x"], forall(["y"], a))
        assert isinstance(nested, Forall)
        assert nested.variables == (Var("x"), Var("y"))

    def test_empty_quantifier_block_is_identity(self):
        a = atom("A", "x")
        assert exists([], a) == a

    def test_operator_sugar(self):
        a, b = atom("A", "x"), atom("B", "x")
        assert (a & b) == conj(a, b)
        assert (a | b) == disj(a, b)
        assert (~a) == neg(a)
        assert (a >> b) == Implies(a, b)


class TestFreeVariables:
    def test_atom(self):
        assert free_variables(atom("E", "x", "y")) == {Var("x"), Var("y")}

    def test_quantifier_binds(self):
        formula = exists(["x"], atom("E", "x", "y"))
        assert free_variables(formula) == {Var("y")}

    def test_eq_and_constants(self):
        formula = Eq(Var("x"), Const(3))
        assert free_variables(formula) == {Var("x")}

    def test_sentence_has_no_free_variables(self):
        formula = exists(["x", "y"], atom("E", "x", "y"))
        assert free_variables(formula) == frozenset()

    def test_connectives_union(self):
        formula = Iff(atom("A", "x"), Implies(atom("B", "y"), atom("C", "z")))
        assert free_variables(formula) == {Var("x"), Var("y"), Var("z")}


class TestRelationsUsed:
    def test_collects_all(self):
        formula = exists(["x"], conj(atom("A", "x"), neg(atom("B", "x"))))
        assert relations_used(formula) == {"A", "B"}

    def test_eq_contributes_nothing(self):
        assert relations_used(Eq(Var("x"), Var("y"))) == frozenset()


class TestSubstitution:
    def test_instantiate_free_variable(self):
        formula = atom("E", "x", "y")
        result = instantiate(formula, {Var("x"): "a"})
        assert result == AtomF("E", (Const("a"), Var("y")))

    def test_bound_variables_untouched(self):
        formula = exists(["x"], atom("E", "x", "y"))
        result = instantiate(formula, {Var("x"): "a", Var("y"): "b"})
        assert result == exists(["x"], AtomF("E", (Var("x"), Const("b"))))

    def test_capture_detected(self):
        formula = exists(["x"], atom("E", "x", "y"))
        with pytest.raises(QueryError):
            substitute(formula, {Var("y"): Var("x")})

    def test_substitute_in_eq(self):
        formula = Eq(Var("x"), Var("y"))
        result = substitute(formula, {Var("x"): Const(1)})
        assert result == Eq(Const(1), Var("y"))


class TestFormulaSize:
    def test_counts_nodes(self):
        a = atom("A", "x")
        assert formula_size(a) == 1
        assert formula_size(conj(a, atom("B", "x"))) == 3
        assert formula_size(exists(["x"], a)) == 2

    def test_hashable_and_equal(self):
        f1 = exists(["x"], conj(atom("A", "x"), atom("B", "x")))
        f2 = exists(["x"], conj(atom("A", "x"), atom("B", "x")))
        assert f1 == f2
        assert hash(f1) == hash(f2)
