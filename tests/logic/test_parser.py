"""Tests for the textual query parser."""

import pytest

from repro.logic.fo import (
    AtomF,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Top,
    Bottom,
    atom,
    conj,
    disj,
    exists,
    forall,
    neg,
)
from repro.logic.parser import parse
from repro.logic.terms import Const, Var
from repro.util.errors import QueryError


class TestAtomsAndTerms:
    def test_simple_atom(self):
        assert parse("E(x, y)") == atom("E", "x", "y")

    def test_nullary_atom(self):
        assert parse("Flag()") == AtomF("Flag", ())

    def test_numeric_constant(self):
        assert parse("S(3)") == AtomF("S", (Const(3),))

    def test_negative_number(self):
        assert parse("S(-2)") == AtomF("S", (Const(-2),))

    def test_string_constant(self):
        assert parse("S('alice')") == AtomF("S", (Const("alice"),))

    def test_equality(self):
        assert parse("x = y") == Eq(Var("x"), Var("y"))

    def test_inequality_desugars_to_negated_eq(self):
        assert parse("x != y") == neg(Eq(Var("x"), Var("y")))

    def test_constants_true_false(self):
        assert parse("true") == Top()
        assert parse("false") == Bottom()


class TestConnectives:
    def test_precedence_and_over_or(self):
        parsed = parse("A(x) | B(x) & C(x)")
        expected = disj(atom("A", "x"), conj(atom("B", "x"), atom("C", "x")))
        assert parsed == expected

    def test_negation_binds_tightest(self):
        parsed = parse("~A(x) & B(x)")
        assert parsed == conj(neg(atom("A", "x")), atom("B", "x"))

    def test_parentheses(self):
        parsed = parse("(A(x) | B(x)) & C(x)")
        assert parsed == conj(
            disj(atom("A", "x"), atom("B", "x")), atom("C", "x")
        )

    def test_implies_right_associative(self):
        parsed = parse("A(x) -> B(x) -> C(x)")
        assert parsed == Implies(
            atom("A", "x"), Implies(atom("B", "x"), atom("C", "x"))
        )

    def test_iff(self):
        parsed = parse("A(x) <-> B(x)")
        assert parsed == Iff(atom("A", "x"), atom("B", "x"))


class TestQuantifiers:
    def test_exists_block(self):
        parsed = parse("exists x y. E(x, y)")
        assert parsed == exists(["x", "y"], atom("E", "x", "y"))

    def test_forall(self):
        parsed = parse("forall x. S(x)")
        assert parsed == forall(["x"], atom("S", "x"))

    def test_nested_quantifiers(self):
        parsed = parse("forall x. exists y. E(x, y)")
        assert parsed == forall(["x"], exists(["y"], atom("E", "x", "y")))

    def test_quantifier_scopes_to_end(self):
        parsed = parse("exists x. A(x) & B(x)")
        assert parsed == exists(["x"], conj(atom("A", "x"), atom("B", "x")))

    def test_quantifier_in_parentheses(self):
        parsed = parse("(exists x. A(x)) & B(y)")
        assert parsed == conj(exists(["x"], atom("A", "x")), atom("B", "y"))


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "E(x",
            "exists . E(x)",
            "E(x,, y)",
            "A(x) &",
            "A(x) B(y)",
            "exists x E(x)",
            "@bogus",
            "x =",
        ],
    )
    def test_syntax_errors_raise(self, bad):
        with pytest.raises(QueryError):
            parse(bad)

    def test_keyword_as_term_rejected(self):
        with pytest.raises(QueryError):
            parse("S(exists)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "exists x y. E(x, y) & S(y)",
            "forall x. S(x) -> exists y. E(x, y)",
            "~(A(x) | B(x)) <-> C(x)",
            "exists x. x != 'a' & S(x)",
        ],
    )
    def test_str_reparses_to_same_ast(self, source):
        first = parse(source)
        assert parse(str(first)) == first
