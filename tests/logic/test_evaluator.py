"""Tests for first-order evaluation and the FOQuery protocol object."""

import pytest

from repro.logic.evaluator import FOQuery, answers, evaluate
from repro.logic.parser import parse
from repro.logic.terms import Var
from repro.relational.builder import StructureBuilder, graph_structure
from repro.util.errors import EvaluationError, QueryError


@pytest.fixture
def path():
    """a -> b -> c directed path with S = {b}."""
    builder = StructureBuilder(["a", "b", "c"])
    builder.relation("E", 2).relation("S", 1)
    builder.add("E", ("a", "b")).add("E", ("b", "c")).add("S", ("b",))
    return builder.build()


class TestEvaluate:
    def test_atoms(self, path):
        assert evaluate(path, parse("E('a', 'b')"))
        assert not evaluate(path, parse("E('b', 'a')"))

    def test_equality(self, path):
        assert evaluate(path, parse("'a' = 'a'"))
        assert not evaluate(path, parse("'a' = 'b'"))

    def test_connectives(self, path):
        assert evaluate(path, parse("E('a', 'b') & S('b')"))
        assert evaluate(path, parse("E('b', 'a') | S('b')"))
        assert evaluate(path, parse("E('b', 'a') -> S('a')"))
        assert evaluate(path, parse("S('a') <-> S('c')"))

    def test_exists(self, path):
        assert evaluate(path, parse("exists x. S(x)"))
        assert not evaluate(path, parse("exists x. E(x, x)"))

    def test_forall(self, path):
        assert evaluate(path, parse("forall x. ~E(x, x)"))
        assert not evaluate(path, parse("forall x. S(x)"))

    def test_nested_alternation(self, path):
        # Every S-element has an outgoing edge.
        assert evaluate(path, parse("forall x. S(x) -> exists y. E(x, y)"))

    def test_unbound_variable_raises(self, path):
        with pytest.raises(EvaluationError):
            evaluate(path, parse("S(x)"))

    def test_assignment_env(self, path):
        assert evaluate(path, parse("S(x)"), {Var("x"): "b"})

    def test_env_not_mutated_by_quantifiers(self, path):
        env = {Var("x"): "b"}
        evaluate(path, parse("exists x. E(x, x)"), env)
        assert env == {Var("x"): "b"}


class TestAnswers:
    def test_binary_answers(self, path):
        result = answers(path, parse("E(x, y)"))
        assert result == {("a", "b"), ("b", "c")}

    def test_free_order_controls_columns(self, path):
        default = answers(path, parse("E(x, y)"))
        reordered = answers(path, parse("E(x, y)"), [Var("y"), Var("x")])
        assert reordered == {(b, a) for a, b in default}

    def test_sentence_answers(self, path):
        assert answers(path, parse("exists x. S(x)")) == {()}
        assert answers(path, parse("exists x. E(x, x)")) == set()

    def test_mismatched_free_order_rejected(self, path):
        with pytest.raises(QueryError):
            answers(path, parse("E(x, y)"), [Var("x")])


class TestFOQuery:
    def test_from_string(self, path):
        query = FOQuery("exists y. E(x, y)")
        assert query.arity == 1
        assert query.answers(path) == {("a",), ("b",)}

    def test_evaluate_tuple(self, path):
        query = FOQuery("E(x, y)", ["x", "y"])
        assert query.evaluate(path, ("a", "b"))
        assert not query.evaluate(path, ("a", "c"))

    def test_arity_mismatch_rejected(self, path):
        query = FOQuery("E(x, y)")
        with pytest.raises(QueryError):
            query.evaluate(path, ("a",))

    def test_instantiated_produces_sentence(self, path):
        query = FOQuery("E(x, y)", ["x", "y"])
        sentence = query.instantiated(("a", "b"))
        assert evaluate(path, sentence)

    def test_equality_and_hash(self):
        q1 = FOQuery("E(x, y)", ["x", "y"])
        q2 = FOQuery("E(x, y)", ["x", "y"])
        q3 = FOQuery("E(x, y)", ["y", "x"])
        assert q1 == q2
        assert hash(q1) == hash(q2)
        assert q1 != q3

    def test_boolean_on_graph(self):
        graph = graph_structure([1, 2, 3], [(1, 2), (2, 3)], symmetric=True)
        triangle_query = FOQuery(
            "exists x y z. E(x, y) & E(y, z) & E(z, x)"
        )
        assert not triangle_query.evaluate(graph, ())
        with_triangle = graph_structure(
            [1, 2, 3], [(1, 2), (2, 3), (3, 1)], symmetric=True
        )
        assert triangle_query.evaluate(with_triangle, ())
