"""Bit-column primitives: popcount, dyadic expansion, Bernoulli columns."""

import random
from fractions import Fraction

import pytest

from repro.kernels.bitops import (
    BATCH_BITS,
    MIN_BATCH_BITS,
    TARGET_WORKING_BITS,
    bernoulli_column,
    dyadic_bits,
    full_mask,
    iter_set_bits,
    pick_batch_bits,
    popcount,
)


def test_popcount_matches_bin_count():
    rng = random.Random(1)
    for _ in range(50):
        value = rng.getrandbits(rng.randint(1, 4096))
        assert popcount(value) == bin(value).count("1")
    assert popcount(0) == 0
    assert popcount(full_mask(BATCH_BITS)) == BATCH_BITS


def test_full_mask():
    assert full_mask(1) == 1
    assert full_mask(8) == 0xFF
    assert full_mask(64) == (1 << 64) - 1


def test_dyadic_bits_reconstruct_the_probability():
    rng = random.Random(2)
    for _ in range(100):
        p = rng.random()
        bits = dyadic_bits(p)
        value = Fraction(0)
        for k, bit in enumerate(bits, start=1):
            value += Fraction(bit, 2**k)
        assert value == Fraction(p)


def test_dyadic_bits_degenerate_probabilities():
    assert dyadic_bits(0.0) == ()
    assert dyadic_bits(1.0) == ()
    assert dyadic_bits(-0.5) == ()
    assert dyadic_bits(1.5) == ()


def test_dyadic_bits_exact_halves():
    assert dyadic_bits(0.5) == (1,)
    assert dyadic_bits(0.25) == (0, 1)
    assert dyadic_bits(0.75) == (1, 1)


def test_bernoulli_column_matches_scalar_stream():
    """The column kernel is a drop-in for ``rng.random() < p`` lanes.

    Not the same stream (the column kernel consumes ``getrandbits``),
    but the *distribution* must match exactly: the per-lane probability
    of a set bit is the dyadic expansion of ``p``.
    """
    width = 20000
    full = full_mask(width)
    for p in (0.5, 0.25, 1.0 / 3.0, 0.9):
        bits = dyadic_bits(p)
        column = bernoulli_column(random.Random(7), width, bits, full)
        rate = popcount(column) / width
        assert abs(rate - p) < 0.02, (p, rate)


def test_bernoulli_column_stays_in_width():
    full = full_mask(64)
    column = bernoulli_column(random.Random(3), 64, dyadic_bits(0.7), full)
    assert column & ~full == 0


def test_bernoulli_column_empty_bits_is_zero():
    assert bernoulli_column(random.Random(3), 64, (), full_mask(64)) == 0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bernoulli_column_exact_dyadic_rate(seed):
    """For p = 1/2 each lane is one fair coin — match a replayed stream."""
    width = 256
    full = full_mask(width)
    column = bernoulli_column(random.Random(seed), width, (1,), full)
    replay = random.Random(seed).getrandbits(width)
    # p = 1/2 sets the lane exactly when the stream bit is 0 (the lane
    # value is *less than* the p-bit).
    assert column == ~replay & full


def test_iter_set_bits_round_trip():
    rng = random.Random(11)
    for _ in range(20):
        value = rng.getrandbits(300)
        assert sum(1 << i for i in iter_set_bits(value)) == value
    assert list(iter_set_bits(0)) == []


def test_pick_batch_bits_tiny_budget_narrows_to_the_budget():
    assert pick_batch_bits(1) == 1
    assert pick_batch_bits(17) == 17
    assert pick_batch_bits(BATCH_BITS - 1) == BATCH_BITS - 1


def test_pick_batch_bits_defaults_to_full_width():
    assert pick_batch_bits(0) == BATCH_BITS  # 0 = unlimited budget
    assert pick_batch_bits(10**9) == BATCH_BITS
    # Up to 512 lanes the working set fits: no narrowing.
    assert pick_batch_bits(10**9, lanes=512) == BATCH_BITS


def test_pick_batch_bits_narrows_for_wide_plans():
    assert pick_batch_bits(10**9, lanes=1024) == TARGET_WORKING_BITS // 1024
    assert pick_batch_bits(10**9, lanes=4096) == TARGET_WORKING_BITS // 4096
    # ... but never below one machine word per column.
    assert pick_batch_bits(10**9, lanes=10**9) == MIN_BATCH_BITS
    # The budget cap still applies after lane narrowing.
    assert pick_batch_bits(48, lanes=10**9) == 48
