"""The compilation cache: LRU behaviour, counters, and engine reuse."""

from fractions import Fraction

import pytest

from repro import obs
from repro.kernels.cache import (
    DEFAULT_CAPACITY,
    LruCache,
    clear_caches,
    compilation_cache,
)
from repro.relational.atoms import Atom
from repro.reliability.exact import truth_probability
from repro.reliability.grounding import ground_existential_to_dnf
from repro.logic.parser import parse


def test_get_or_create_calls_factory_once():
    cache = LruCache(capacity=4)
    calls = []

    def factory():
        calls.append(1)
        return "value"

    assert cache.get_or_create("k", factory) == "value"
    assert cache.get_or_create("k", factory) == "value"
    assert len(calls) == 1


def test_lru_eviction_order():
    cache = LruCache(capacity=2)
    cache.get_or_create("a", lambda: 1)
    cache.get_or_create("b", lambda: 2)
    # Touch "a" so "b" is the least recently used.
    cache.get_or_create("a", lambda: -1)
    cache.get_or_create("c", lambda: 3)
    assert len(cache) == 2
    calls = []
    cache.get_or_create("b", lambda: calls.append(1) or 2)
    assert calls == [1]  # "b" was evicted, factory ran again


def test_capacity_is_bounded():
    cache = LruCache(capacity=8)
    for index in range(50):
        cache.get_or_create(index, lambda: index)
    assert len(cache) == 8


def test_default_capacity_is_documented_value():
    assert DEFAULT_CAPACITY == 1024
    assert LruCache().capacity == 1024


def test_factory_failure_caches_nothing():
    cache = LruCache(capacity=4)

    def boom():
        raise RuntimeError("refused")

    with pytest.raises(RuntimeError):
        cache.get_or_create("k", boom)
    assert len(cache) == 0
    # A later success goes through.
    assert cache.get_or_create("k", lambda: 7) == 7


def test_hit_miss_counters():
    recorder = obs.StatsRecorder()
    cache = LruCache(capacity=1)
    with obs.use(recorder):
        cache.get_or_create("a", lambda: 1)  # miss
        cache.get_or_create("a", lambda: 1)  # hit
        cache.get_or_create("b", lambda: 2)  # miss + eviction
    counters = recorder.summary()["counters"]
    assert counters["kernels.cache.misses"] == 2
    assert counters["kernels.cache.hits"] == 1
    assert counters["kernels.cache.evictions"] == 1


def test_clear_caches_empties_the_global_cache():
    compilation_cache.get_or_create(("test", "sentinel"), lambda: 1)
    assert len(compilation_cache) > 0
    clear_caches()
    assert len(compilation_cache) == 0


def test_grounding_is_memoised_per_database(triangle_db):
    sentence = parse("exists x. exists y. E(x, y) & S(y)")
    recorder = obs.StatsRecorder()
    with obs.use(recorder):
        first = ground_existential_to_dnf(triangle_db, sentence)
        second = ground_existential_to_dnf(triangle_db, sentence)
    assert first is second
    counters = recorder.summary()["counters"]
    assert counters["kernels.cache.hits"] >= 1


def test_repeated_query_hits_the_cache(triangle_db):
    # Non-hierarchical, so the exact engine takes the grounded-DNF path
    # (the lifted engine never grounds and has nothing to cache).
    query = "exists x. exists y. E(x, y) & S(x) & S(y)"
    recorder = obs.StatsRecorder()
    with obs.use(recorder):
        first = truth_probability(triangle_db, query)
        hits_before = recorder.summary()["counters"].get(
            "kernels.cache.hits", 0
        )
        second = truth_probability(triangle_db, query)
        hits_after = recorder.summary()["counters"]["kernels.cache.hits"]
    assert first == second
    assert hits_after > hits_before


def test_cache_distinguishes_databases(triangle_db, triangle):
    from repro.reliability.unreliable import UnreliableDatabase

    other = UnreliableDatabase(
        triangle, {Atom("S", ("b",)): Fraction(1, 2)}
    )
    query = "exists x. S(x)"
    assert truth_probability(triangle_db, query) != truth_probability(
        other, query
    )


def test_aborted_factory_counts_no_miss():
    """A racer cancelled mid-compilation leaves no entry and no miss."""
    from repro.util.errors import BudgetExceeded

    recorder = obs.StatsRecorder()
    cache = LruCache(capacity=4)

    def cancelled():
        raise BudgetExceeded("cancelled: lost the race")

    with obs.use(recorder):
        with pytest.raises(BudgetExceeded):
            cache.get_or_create("k", cancelled)
    assert len(cache) == 0
    counters = recorder.summary().get("counters", {})
    assert "kernels.cache.misses" not in counters
    assert "kernels.cache.hits" not in counters


def test_concurrent_duplicate_compute_keeps_first_insert():
    """Two racers compiling one key: one miss, one hit, one entry."""
    import threading

    recorder = obs.StatsRecorder()
    cache = LruCache(capacity=4)
    barrier = threading.Barrier(2)
    results = [None, None]

    def factory():
        barrier.wait(timeout=5)  # both threads are mid-factory together
        return object()

    def worker(slot):
        results[slot] = cache.get_or_create("k", factory)

    with obs.use(recorder):
        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

    # The first insert won; the duplicate value was discarded and both
    # callers hold the same object.
    assert results[0] is results[1]
    assert len(cache) == 1
    counters = recorder.summary()["counters"]
    assert counters["kernels.cache.misses"] == 1
    assert counters["kernels.cache.hits"] == 1
