"""The persistent compilation-cache tier: fallback, counters, lifecycle.

The contract mirrors the costmodel calibration-file one: **a bad cache
file never takes a run down.**  Corrupt, truncated, version-mismatched,
foreign, and concurrently-half-written envelopes all fall back to a
cold compile (counted ``kernels.cache.persist.invalid``), and a disk
hit fills the memory tier *without* counting a compile miss — the
invariant the CI warm-start lane asserts across two processes.
"""

import os
import pickle
import subprocess
import sys
import threading

import pytest

from repro import obs
from repro.kernels import cache_persist
from repro.kernels.cache import LruCache, compilation_cache
from repro.kernels.cache_persist import (
    PERSIST_VERSION,
    PERSISTABLE_KINDS,
    PersistentCache,
    persistable,
)

KEY = ("grounding", "fingerprint", "query")


@pytest.fixture
def tier(tmp_path):
    return PersistentCache(str(tmp_path / "cache"))


def _counters(recorder):
    return recorder.summary()["counters"]


class TestRoundTrip:
    def test_store_then_load(self, tier):
        assert tier.store(KEY, {"plan": [1, 2, 3]}) is True
        assert tier.load(KEY) == {"plan": [1, 2, 3]}

    def test_absent_file_is_a_plain_miss(self, tier):
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            assert tier.load(KEY) is cache_persist._MISSING
        counters = _counters(recorder)
        assert counters["kernels.cache.persist.misses"] == 1
        assert "kernels.cache.persist.invalid" not in counters

    def test_overwrite_replaces_value(self, tier):
        tier.store(KEY, "old")
        tier.store(KEY, "new")
        assert tier.load(KEY) == "new"

    def test_counters_on_hit_and_store(self, tier):
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            tier.store(KEY, 42)
            tier.load(KEY)
        counters = _counters(recorder)
        assert counters["kernels.cache.persist.stores"] == 1
        assert counters["kernels.cache.persist.hits"] == 1


class TestFallback:
    """Every flavour of bad file reports a miss, never raises."""

    def _assert_invalid_miss(self, tier):
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            assert tier.load(KEY) is cache_persist._MISSING
        counters = _counters(recorder)
        assert counters["kernels.cache.persist.invalid"] == 1
        assert counters["kernels.cache.persist.misses"] == 1

    def test_corrupt_file(self, tier):
        with open(tier.path_for(KEY), "wb") as handle:
            handle.write(b"\x00not a pickle at all\xff")
        self._assert_invalid_miss(tier)

    def test_truncated_file(self, tier):
        tier.store(KEY, {"plan": list(range(100))})
        path = tier.path_for(KEY)
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        self._assert_invalid_miss(tier)

    def test_empty_file(self, tier):
        open(tier.path_for(KEY), "wb").close()
        self._assert_invalid_miss(tier)

    def test_version_mismatch(self, tier):
        envelope = {"version": PERSIST_VERSION + 1, "key": KEY, "value": 1}
        with open(tier.path_for(KEY), "wb") as handle:
            pickle.dump(envelope, handle)
        self._assert_invalid_miss(tier)

    def test_wrong_envelope_shape(self, tier):
        with open(tier.path_for(KEY), "wb") as handle:
            pickle.dump(["not", "a", "dict"], handle)
        self._assert_invalid_miss(tier)

    def test_unpicklable_class_in_payload(self, tier):
        # An envelope referencing a class that does not exist in this
        # process (e.g. written by a newer version of the codebase).
        path = tier.path_for(KEY)
        with open(path, "wb") as handle:
            handle.write(
                b"\x80\x04\x95\x20\x00\x00\x00\x00\x00\x00\x00\x8c\x0b"
                b"no.such.mod\x94\x8c\x07NoClass\x94\x93\x94."
            )
        self._assert_invalid_miss(tier)

    def test_digest_collision_key_mismatch_is_plain_miss(self, tier):
        # Same file name, different key inside: equality check refuses
        # it without flagging the file invalid.
        other = ("grounding", "other-fingerprint", "other-query")
        envelope = {"version": PERSIST_VERSION, "key": other, "value": 9}
        with open(tier.path_for(KEY), "wb") as handle:
            pickle.dump(envelope, handle)
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            assert tier.load(KEY) is cache_persist._MISSING
        counters = _counters(recorder)
        assert counters["kernels.cache.persist.misses"] == 1
        assert "kernels.cache.persist.invalid" not in counters

    def test_unpicklable_value_store_fails_softly(self, tier):
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            assert tier.store(KEY, threading.Lock()) is False
        assert _counters(recorder)["kernels.cache.persist.invalid"] == 1
        assert tier.stats()["files"] == 0
        assert not os.listdir(tier.directory)  # no temp file left behind

    def test_concurrent_writers_leave_a_whole_file(self, tier):
        # Many threads racing the same key: atomic rename means the
        # survivor is one complete envelope, never a torn mix.
        threads = [
            threading.Thread(target=tier.store, args=(KEY, [i] * 50))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        value = tier.load(KEY)
        assert value in [[i] * 50 for i in range(8)]
        assert tier.stats()["files"] == 1

    def test_stray_temp_files_do_not_break_stats_or_load(self, tier):
        tier.store(KEY, 1)
        # Simulate a writer that died mid-write in another process.
        stray = tier.path_for(KEY) + ".tmp.99999.1"
        with open(stray, "wb") as handle:
            handle.write(b"half an envelo")
        assert tier.load(KEY) == 1
        assert tier.stats()["files"] == 1  # .pkl files only
        assert tier.clear() >= 1
        assert not os.path.exists(stray)  # clear sweeps temp files too


class TestMaintenance:
    def test_stats_counts_files_and_bytes(self, tier):
        assert tier.stats() == {
            "directory": tier.directory,
            "files": 0,
            "bytes": 0,
        }
        tier.store(("grounding", "a"), "x" * 100)
        tier.store(("grounding", "b"), "y" * 100)
        stats = tier.stats()
        assert stats["files"] == 2
        assert stats["bytes"] > 200

    def test_gc_evicts_oldest_first(self, tier):
        for index in range(4):
            key = ("grounding", f"k{index}")
            tier.store(key, index)
            # Distinct mtimes so the eviction order is deterministic.
            os.utime(tier.path_for(key), (index, index))
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            assert tier.gc(max_files=2) == 2
        assert _counters(recorder)["kernels.cache.persist.evicted"] == 2
        assert tier.load(("grounding", "k0")) is cache_persist._MISSING
        assert tier.load(("grounding", "k3")) == 3

    def test_gc_by_bytes(self, tier):
        for index in range(4):
            key = ("grounding", f"k{index}")
            tier.store(key, "x" * 512)
            os.utime(tier.path_for(key), (index, index))
        per_file = tier.stats()["bytes"] // 4
        tier.gc(max_bytes=2 * per_file + 1)
        assert tier.stats()["files"] == 2

    def test_gc_without_limits_is_a_no_op(self, tier):
        tier.store(KEY, 1)
        assert tier.gc() == 0
        assert tier.stats()["files"] == 1

    def test_clear_removes_everything(self, tier):
        tier.store(("grounding", "a"), 1)
        tier.store(("grounding", "b"), 2)
        assert tier.clear() == 2
        assert tier.stats() == {
            "directory": tier.directory,
            "files": 0,
            "bytes": 0,
        }


class TestStableToken:
    def test_frozensets_render_sorted(self):
        token = cache_persist._stable_token(frozenset({"b", "a", "c"}))
        assert token == "{'a','b','c'}"

    def test_path_is_stable_across_calls(self, tier):
        key = ("grounding", frozenset({("a", 1), ("b", 2)}), "q")
        assert tier.path_for(key) == tier.path_for(key)

    def test_kind_prefixes_the_file_name(self, tier):
        name = os.path.basename(tier.path_for(("dnf_plan", "x")))
        assert name.startswith("dnf_plan-")
        assert name.endswith(".pkl")


class TestActivation:
    def test_persistable_kinds(self):
        for kind in PERSISTABLE_KINDS:
            assert persistable((kind, "rest"))
        assert not persistable(("mu_table", "rest"))
        assert not persistable("grounding")  # bare string, not a tuple
        assert not persistable(())

    def test_configure_and_deactivate(self, tmp_path):
        tier = cache_persist.configure(str(tmp_path / "c"))
        assert cache_persist.active() is tier
        cache_persist.deactivate()
        assert cache_persist.active() is None

    def test_configure_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_persist.ENV_CACHE_DIR, str(tmp_path / "e"))
        tier = cache_persist.configure_from_env()
        assert tier is not None
        assert tier.directory == str(tmp_path / "e")

    def test_empty_env_keeps_current_tier(self, monkeypatch):
        monkeypatch.setenv(cache_persist.ENV_CACHE_DIR, "")
        assert cache_persist.configure_from_env() is None


class TestMemoryTierIntegration:
    """get_or_create consults the disk tier on memory misses."""

    def test_disk_hit_is_not_a_compile_miss(self, tmp_path):
        cache_persist.configure(str(tmp_path / "c"))
        first = LruCache(capacity=8)
        second = LruCache(capacity=8)  # a "new process"
        calls = []

        def factory():
            calls.append(1)
            return {"compiled": True}

        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            first.get_or_create(KEY, factory)
            assert second.get_or_create(KEY, factory) == {"compiled": True}
        assert calls == [1]  # the second cache never compiled
        counters = _counters(recorder)
        assert counters["kernels.cache.misses"] == 1
        assert counters["kernels.cache.persist.hits"] == 1
        assert counters["kernels.cache.persist.stores"] == 1

    def test_non_persistable_kinds_stay_memory_only(self, tmp_path):
        tier = cache_persist.configure(str(tmp_path / "c"))
        cache = LruCache(capacity=8)
        cache.get_or_create(("mu_table", "k"), lambda: 1)
        assert tier.stats()["files"] == 0

    def test_corrupt_disk_entry_falls_back_to_factory(self, tmp_path):
        tier = cache_persist.configure(str(tmp_path / "c"))
        with open(tier.path_for(KEY), "wb") as handle:
            handle.write(b"garbage")
        cache = LruCache(capacity=8)
        assert cache.get_or_create(KEY, lambda: "cold") == "cold"
        # The cold compile repaired the file for the next process.
        assert tier.load(KEY) == "cold"

    def test_inactive_tier_changes_nothing(self, tmp_path):
        cache_persist.deactivate()
        cache = LruCache(capacity=8)
        assert cache.get_or_create(KEY, lambda: 5) == 5
        assert not os.path.exists(str(tmp_path / "never-created"))


class TestWarmStartAcrossProcesses:
    """The CI warm-start smoke, in miniature: two interpreters, one dir."""

    SCRIPT = """
import sys
from fractions import Fraction
from repro import obs
from repro.kernels import cache_persist
from repro.reliability.exact import truth_probability
from repro.reliability.unreliable import UnreliableDatabase
from repro.relational.builder import StructureBuilder
from repro.relational.atoms import Atom

cache_persist.configure(sys.argv[1])
builder = StructureBuilder(range(4))
builder.relation("E", 2)
for pair in [(0, 1), (1, 0), (1, 2), (2, 1)]:
    builder.add("E", pair)
mu = {Atom("E", pair): Fraction(1, 8)
      for pair in [(0, 1), (1, 0), (1, 2), (2, 1)]}
db = UnreliableDatabase(builder.build(), mu)
with obs.recording() as recorder:
    value = truth_probability(db, "exists x y. E(x, y) & E(y, x)",
                              method="dnf")
counters = recorder.summary()["counters"]
print(value)
print("compile_misses", counters.get("kernels.cache.misses", 0))
print("persist_hits", counters.get("kernels.cache.persist.hits", 0))
"""

    def _run(self, cache_dir):
        env = dict(os.environ)
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = os.path.join(root, "src")
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, cache_dir],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        lines = result.stdout.strip().splitlines()
        value = lines[0]
        fields = dict(line.split() for line in lines[1:])
        return value, int(fields["compile_misses"]), int(
            fields["persist_hits"]
        )

    def test_second_process_starts_warm(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        cold_value, cold_misses, cold_hits = self._run(cache_dir)
        warm_value, warm_misses, warm_hits = self._run(cache_dir)
        assert cold_value == warm_value  # bit-identical Fractions
        assert cold_misses > 0 and cold_hits == 0
        assert warm_hits > 0
        assert warm_misses == 0  # zero recompiles on the warm path


class TestCliCacheCommands:
    def test_stats_clear_gc(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "c")
        tier = PersistentCache(cache_dir)
        for index in range(3):
            key = ("grounding", f"k{index}")
            tier.store(key, index)
            os.utime(tier.path_for(key), (index, index))

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "files      3" in out

        assert main(
            ["cache", "gc", "--cache-dir", cache_dir, "--max-files", "1"]
        ) == 0
        assert "evicted 2" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert tier.stats()["files"] == 0

    def test_env_var_names_the_directory(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        cache_dir = str(tmp_path / "from-env")
        PersistentCache(cache_dir).store(KEY, 1)
        monkeypatch.setenv(cache_persist.ENV_CACHE_DIR, cache_dir)
        assert main(["cache", "stats"]) == 0
        assert "files      1" in capsys.readouterr().out

    def test_no_directory_is_a_clean_error(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv(cache_persist.ENV_CACHE_DIR, raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_run_cache_dir_flag_warm_starts(self, tmp_path, capsys):
        from repro.cli import main
        from repro.relational.encoding import encode_unreliable_database
        from repro.relational.builder import StructureBuilder
        from repro.relational.atoms import Atom
        from repro.reliability.unreliable import UnreliableDatabase
        from fractions import Fraction

        builder = StructureBuilder(["a", "b"])
        builder.relation("E", 2)
        builder.add("E", ("a", "b"))
        builder.add("E", ("b", "a"))
        mu = {
            Atom("E", ("a", "b")): Fraction(1, 8),
            Atom("E", ("b", "a")): Fraction(1, 8),
        }
        db_path = tmp_path / "db.txt"
        db_path.write_text(
            encode_unreliable_database(UnreliableDatabase(builder.build(), mu))
        )
        cache_dir = str(tmp_path / "c")
        query = "exists x y. E(x, y) & E(y, x)"
        argv = [
            "run", str(db_path), query, "--cache-dir", cache_dir, "--stats"
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "kernels.cache.persist.stores" in cold
        # Same interpreter: clear the memory tier to simulate process two.
        from repro.kernels.cache import clear_caches

        clear_caches()
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "kernels.cache.persist.hits" in warm
        assert "kernels.cache.misses" not in warm
