"""Batched sampling kernels: agreement with scalar loops and exactness.

Batched and scalar paths consume the RNG differently, so estimates are
not stream-identical — the contract is distributional: both must land
within a Hoeffding-style tolerance of the exact value.  Shard fan-out,
by contrast, must be *bit-identical* across shard counts for a fixed
seed (deterministic per-batch seeding).
"""

import math
from fractions import Fraction

import pytest

from repro import obs
from repro.kernels.plan import compile_hamming_plan, compile_truth_plan
from repro.propositional.formula import DNF, Clause, Literal
from repro.propositional.karp_luby import (
    karp_luby_samples,
    naive_probability_estimate,
)
from repro.relational.atoms import Atom
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.montecarlo import (
    estimate_reliability_hamming,
    estimate_truth_probability,
)
from repro.util.errors import QueryError
from repro.util.rng import make_rng

QUERY = "exists x. exists y. E(x, y) & S(y)"
SAMPLES = 20000
# Hoeffding at delta = 1e-6 for 20k samples, doubled for slack.
TOLERANCE = 2 * math.sqrt(math.log(2.0 / 1e-6) / (2.0 * SAMPLES))


def test_truth_batched_and_scalar_agree_with_exact(triangle_db):
    exact = float(truth_probability(triangle_db, QUERY))
    batched = estimate_truth_probability(
        triangle_db, QUERY, make_rng(1), samples=SAMPLES
    )
    scalar = estimate_truth_probability(
        triangle_db, QUERY, make_rng(1), samples=SAMPLES, kernel="scalar"
    )
    assert abs(batched - exact) < TOLERANCE
    assert abs(scalar - exact) < TOLERANCE


def test_truth_batched_deterministic_for_seed(triangle_db):
    first = estimate_truth_probability(
        triangle_db, QUERY, make_rng(5), samples=SAMPLES
    )
    second = estimate_truth_probability(
        triangle_db, QUERY, make_rng(5), samples=SAMPLES
    )
    assert first == second


@pytest.mark.parametrize("shards", [2, 4])
def test_truth_sharded_matches_single_shard(triangle_db, shards):
    baseline = estimate_truth_probability(
        triangle_db, QUERY, make_rng(5), samples=SAMPLES
    )
    sharded = estimate_truth_probability(
        triangle_db, QUERY, make_rng(5), samples=SAMPLES, shards=shards
    )
    assert sharded == baseline


def test_truth_certain_db_short_circuits(certain_db):
    assert (
        estimate_truth_probability(
            certain_db, QUERY, make_rng(1), samples=100
        )
        == 1.0
    )


def test_truth_batched_kernel_requires_compilable_query(triangle_db):
    class Opaque:
        arity = 0

        def evaluate(self, structure, args=()):
            return True

    with pytest.raises(QueryError):
        estimate_truth_probability(
            triangle_db, Opaque(), make_rng(1), samples=10, kernel="batched"
        )
    # "auto" falls back to the scalar loop instead.
    value = estimate_truth_probability(
        triangle_db, Opaque(), make_rng(1), samples=10
    )
    assert value == 1.0


def test_unknown_kernel_rejected(triangle_db):
    with pytest.raises(QueryError):
        estimate_truth_probability(
            triangle_db, QUERY, make_rng(1), samples=10, kernel="simd"
        )


def test_hamming_batched_and_scalar_agree_with_exact(triangle_db):
    query = "E(x, y) & S(y)"
    exact = float(reliability(triangle_db, query))
    batched = estimate_reliability_hamming(
        triangle_db, query, make_rng(2), samples=SAMPLES
    )
    scalar = estimate_reliability_hamming(
        triangle_db, query, make_rng(2), samples=SAMPLES, kernel="scalar"
    )
    assert abs(batched - exact) < TOLERANCE
    assert abs(scalar - exact) < TOLERANCE


@pytest.mark.parametrize("shards", [2, 4])
def test_hamming_sharded_matches_single_shard(triangle_db, shards):
    query = "E(x, y) & S(y)"
    baseline = estimate_reliability_hamming(
        triangle_db, query, make_rng(3), samples=SAMPLES
    )
    sharded = estimate_reliability_hamming(
        triangle_db, query, make_rng(3), samples=SAMPLES, shards=shards
    )
    assert sharded == baseline


def _small_dnf():
    a, b, c = Atom("P", (1,)), Atom("P", (2,)), Atom("P", (3,))
    dnf = DNF(
        [
            Clause([Literal(a, True), Literal(b, False)]),
            Clause([Literal(b, True), Literal(c, True)]),
        ]
    )
    probs = {
        a: Fraction(1, 3),
        b: Fraction(1, 4),
        c: Fraction(2, 5),
    }
    return dnf, probs


def test_karp_luby_batched_matches_scalar_distributionally():
    from repro.propositional.counting import probability_enumerate

    dnf, probs = _small_dnf()
    exact = float(probability_enumerate(dnf, probs))
    for method in ("coverage", "canonical"):
        batched = karp_luby_samples(
            dnf, probs, SAMPLES, make_rng(4), method=method
        )
        scalar = karp_luby_samples(
            dnf, probs, SAMPLES, make_rng(4), method=method, kernel="scalar"
        )
        assert abs(batched.estimate - exact) < TOLERANCE
        assert abs(scalar.estimate - exact) < TOLERANCE


@pytest.mark.parametrize("shards", [2, 4])
def test_karp_luby_sharded_matches_single_shard(shards):
    dnf, probs = _small_dnf()
    baseline = karp_luby_samples(dnf, probs, SAMPLES, make_rng(4))
    sharded = karp_luby_samples(
        dnf, probs, SAMPLES, make_rng(4), shards=shards
    )
    assert sharded.estimate == baseline.estimate


def test_naive_batched_matches_scalar_distributionally():
    from repro.propositional.counting import probability_enumerate

    dnf, probs = _small_dnf()
    exact = float(probability_enumerate(dnf, probs))
    batched = naive_probability_estimate(dnf, probs, SAMPLES, make_rng(6))
    scalar = naive_probability_estimate(
        dnf, probs, SAMPLES, make_rng(6), kernel="scalar"
    )
    assert abs(batched - exact) < TOLERANCE
    assert abs(scalar - exact) < TOLERANCE


def test_plans_compile_for_fo_queries(triangle_db):
    from repro.reliability.exact import as_query

    query = as_query(QUERY)
    plan = compile_truth_plan(triangle_db, query, ())
    assert plan is not None
    hamming = compile_hamming_plan(triangle_db, as_query("E(x, y) & S(y)"))
    assert hamming is not None
    assert len(hamming.tuples) == triangle_db.universe_size**2


def test_batched_kernels_report_counters(triangle_db):
    recorder = obs.StatsRecorder()
    with obs.use(recorder):
        estimate_truth_probability(
            triangle_db, QUERY, make_rng(1), samples=5000
        )
    counters = recorder.summary()["counters"]
    assert counters["kernels.batch_samples"] == 5000
    assert counters["montecarlo.samples"] == 5000
    assert counters["kernels.batches"] >= 1


def test_batched_respects_budget(triangle_db):
    from repro.runtime.budget import Budget, apply
    from repro.util.errors import BudgetExceeded, CostRefused

    with pytest.raises((BudgetExceeded, CostRefused)):
        with apply(Budget(max_samples=100)):
            estimate_truth_probability(
                triangle_db, QUERY, make_rng(1), samples=SAMPLES
            )
