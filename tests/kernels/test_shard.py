"""Shard fan-out: shared-payload plumbing and compilation-cache flatness.

The ROADMAP item this pins: the fan-out payload ships the compiled plan
*once per worker* (pool initializer) instead of once per batch, so the
parent compiles exactly one plan through the LRU and
``kernels.cache.misses`` stays flat no matter how many shards run.
"""

import pickle

import pytest

from repro import obs
from repro.kernels.cache import clear_caches
from repro.kernels.plan import compile_truth_plan
from repro.kernels.shard import run_jobs
from repro.obs.recorder import StatsRecorder
from repro.reliability.montecarlo import estimate_truth_probability
from repro.util.rng import make_rng

QUERY = "exists x. exists y. E(x, y) & S(y)"


def _scale(factor, base, index, width):
    # Stands in for a batch worker: (shared..., *payload) calling
    # convention, deterministic in the payload.
    return factor * (base + index * width)


def _boom(base, index, width):
    raise RuntimeError("worker exploded")


class TestRunJobs:
    def test_shared_and_unshared_paths_agree(self):
        payloads = [(100, index, 7) for index in range(8)]
        shared = run_jobs(_scale, payloads, shards=4, shared=(3,))
        unshared = run_jobs(
            _scale, [(3, *payload) for payload in payloads], shards=4
        )
        expected = [_scale(3, *payload) for payload in payloads]
        # Either path may return None (pool unavailable) — but when a
        # pool ran, results must be exact and in payload order.
        assert shared is None or shared == expected
        assert unshared is None or unshared == expected

    def test_single_shard_declines_the_pool(self):
        assert run_jobs(_scale, [(1, 0, 1)], shards=1, shared=(2,)) is None
        assert run_jobs(_scale, [], shards=8) is None

    def test_worker_failure_falls_back(self):
        with obs.use(StatsRecorder()) as recorder:
            result = run_jobs(_boom, [(0, i, 1) for i in range(4)], shards=2)
        assert result is None
        counters = recorder.summary()["counters"]
        assert counters.get("kernels.shard.fallbacks", 0) == 1


class TestSharedPlanPayload:
    def test_compiled_plan_is_picklable(self, triangle_db):
        plan = compile_truth_plan(triangle_db, QUERY)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_cache_misses_flat_across_shard_counts(self, triangle_db):
        # The parent compiles (grounding + plan) exactly as often no
        # matter how wide the fan-out: workers receive the plan via the
        # pool initializer and never touch the cache.
        def misses(shards):
            clear_caches()
            with obs.use(StatsRecorder()) as recorder:
                estimate_truth_probability(
                    triangle_db, QUERY, make_rng(5), samples=4096,
                    shards=shards,
                )
            return recorder.summary()["counters"]["kernels.cache.misses"]

        baseline = misses(1)
        assert baseline >= 1
        for shards in (2, 4, 8):
            assert misses(shards) == baseline

    def test_sharded_estimate_identical_to_sequential(self, triangle_db):
        baseline = estimate_truth_probability(
            triangle_db, QUERY, make_rng(5), samples=4096
        )
        for shards in (2, 3, 4):
            assert (
                estimate_truth_probability(
                    triangle_db, QUERY, make_rng(5), samples=4096, shards=shards
                )
                == baseline
            )
