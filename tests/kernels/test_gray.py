"""Gray-code enumeration: bit-identical to the product sweep, always.

The incremental weight updates multiply and divide exact ``Fraction``
ratios, so the per-world weights — and therefore the sums — must equal
the ``itertools.product`` sweep *exactly*, not approximately.
"""

import random
from fractions import Fraction

from repro import obs
from repro.kernels.gray import (
    gray_dnf_probability,
    gray_enumeration_probability,
    product_enumeration_probability,
)
from repro.propositional.counting import probability_enumerate
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.grounding import ground_existential_to_dnf
from repro.reliability.unreliable import UnreliableDatabase
from repro.logic.parser import parse


def _random_db(rng, size):
    builder = StructureBuilder(list(range(size)))
    builder.relation("E", 2)
    builder.relation("S", 1)
    for i in range(size):
        for j in range(size):
            if rng.random() < 0.4:
                builder.add("E", (i, j))
        if rng.random() < 0.5:
            builder.add("S", (i,))
    structure = builder.build()
    mu = {}
    for i in range(size):
        for j in range(size):
            if rng.random() < 0.5:
                mu[Atom("E", (i, j))] = Fraction(rng.randint(1, 7), 8)
        if rng.random() < 0.5:
            mu[Atom("S", (i,))] = Fraction(rng.randint(1, 7), 8)
    return UnreliableDatabase(structure, mu)


def test_gray_matches_product_exactly_on_random_databases():
    rng = random.Random(42)
    for _ in range(15):
        db = _random_db(rng, rng.randint(2, 3))
        atoms = sorted(db.uncertain_atoms(), key=repr)[:8]
        if not atoms:
            continue
        target = atoms[0]
        predicate = lambda world: world.holds(target)
        gray = gray_enumeration_probability(db, atoms, predicate)
        product = product_enumeration_probability(db, atoms, predicate)
        assert gray == product
        assert isinstance(gray, Fraction)


def test_gray_empty_atom_list():
    rng = random.Random(1)
    db = _random_db(rng, 2)
    assert gray_enumeration_probability(db, [], lambda w: True) == 1
    assert gray_enumeration_probability(db, [], lambda w: False) == 0


def test_gray_counts_all_worlds():
    rng = random.Random(7)
    db = _random_db(rng, 3)
    atoms = sorted(db.uncertain_atoms(), key=repr)[:5]
    recorder = obs.StatsRecorder()
    with obs.use(recorder):
        gray_enumeration_probability(db, atoms, lambda w: True)
    counters = recorder.summary()["counters"]
    assert counters["exact.worlds_enumerated"] == 2 ** len(atoms)
    if len(atoms) > 1:
        assert counters["kernels.gray.steps"] == 2 ** len(atoms) - 1


def test_gray_dnf_matches_enumeration_oracle():
    rng = random.Random(9)
    for _ in range(10):
        db = _random_db(rng, rng.randint(2, 3))
        sentence = parse("exists x. exists y. E(x, y) & S(x) & S(y)")
        try:
            dnf = ground_existential_to_dnf(db, sentence).dnf
        except Exception:
            continue
        if dnf.is_true() or dnf.is_false():
            continue
        probs = {v: db.nu(v) for v in dnf.variables}
        assert gray_dnf_probability(db, dnf) == probability_enumerate(
            dnf, probs
        )


def test_gray_dnf_handles_degenerate_probabilities():
    """nu == 0 or 1 falls back to plain enumeration, same answer."""
    from repro.propositional.formula import DNF, Clause, Literal

    builder = StructureBuilder(["a", "b"])
    builder.relation("S", 1)
    builder.add("S", ("a",))
    structure = builder.build()
    # S(a) is certain (nu = 1); S(b) is uncertain with nu = 1/4.
    db = UnreliableDatabase(structure, {Atom("S", ("b",)): Fraction(1, 4)})
    certain, uncertain = Atom("S", ("a",)), Atom("S", ("b",))
    assert db.nu(certain) == 1
    dnf = DNF(
        [Clause([Literal(certain, True), Literal(uncertain, False)])]
    )
    probs = {v: db.nu(v) for v in dnf.variables}
    assert gray_dnf_probability(db, dnf) == probability_enumerate(dnf, probs)
