"""Multithreaded stress tests for the process-wide compilation cache.

The :class:`~repro.kernels.cache.LruCache` contract under concurrency:

* first-insert-wins — racers compiling the same key may each run the
  factory, but every caller gets the first inserted value (references
  already handed out stay valid);
* eviction racing insertion never corrupts entries — a caller always
  receives a value built for *its* key;
* a factory that raises (a racer cancelled mid-compilation) caches
  nothing and never poisons the key for later callers.

These run on real threads on purpose: they hammer the lock ordering
the virtual-clock tests cannot.
"""

import random
import threading

import pytest

from repro import obs
from repro.kernels.cache import LruCache
from repro.util.errors import BudgetExceeded


def hammer(threads, worker):
    """Run ``worker(tid)`` on ``threads`` threads through one barrier."""
    barrier = threading.Barrier(threads)
    errors = []

    def body(tid):
        barrier.wait()
        try:
            worker(tid)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [
        threading.Thread(target=body, args=(tid,)) for tid in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60)
        assert not thread.is_alive(), "stress worker deadlocked"
    assert not errors, errors


class TestCacheStress:
    def test_eviction_racing_insert_returns_the_right_value(self):
        # Far more live keys than capacity: every insert races an
        # eviction, and hits race moves-to-front.  Values are tagged
        # with their key so cross-wiring would be detected.
        cache = LruCache(capacity=8)
        mismatches = []

        def worker(tid):
            rng = random.Random(tid)
            for _ in range(400):
                key = rng.randrange(32)
                value = cache.get_or_create(key, lambda k=key: ("blob", k))
                if value[1] != key:
                    mismatches.append((tid, key, value))

        hammer(8, worker)
        assert not mismatches
        assert len(cache) <= 8

    def test_first_insert_wins_for_concurrent_racers(self):
        # With no eviction pressure, all racers on one key must end up
        # holding the *same* object, however many factories actually
        # ran — the duplicate values are discarded, never handed out.
        cache = LruCache(capacity=64)
        seen = []
        seen_lock = threading.Lock()

        def worker(tid):
            value = cache.get_or_create("shared", lambda: object())
            with seen_lock:
                seen.append(value)

        hammer(16, worker)
        assert len(seen) == 16
        assert len({id(value) for value in seen}) == 1
        # And the winner is the cached entry later callers get too.
        assert cache.get_or_create("shared", lambda: object()) is seen[0]

    def test_cancelled_racer_never_poisons_the_key(self):
        # Racers aborting mid-compilation (BudgetExceeded, as a
        # cancelled racer's checkpoint raises) must cache nothing, count
        # no miss, and leave the key healthy for later callers.
        cache = LruCache(capacity=64)
        recorder = obs.StatsRecorder()

        def aborting_worker(tid):
            # Phase 1: every call aborts, so the key can never appear
            # and every caller must see the exception.
            for key in range(4):
                with pytest.raises(BudgetExceeded):
                    cache.get_or_create(key, _aborting_factory)

        with obs.use(recorder):
            hammer(8, aborting_worker)
            assert len(cache) == 0  # nothing cached, nothing poisoned
            assert (
                recorder.summary()["counters"].get("kernels.cache.misses", 0)
                == 0
            )

            def mixed_worker(tid):
                # Phase 2: aborters and builders race on the same keys.
                for round_index in range(50):
                    key = round_index % 4
                    if (tid + round_index) % 2 and key not in cache:
                        try:
                            cache.get_or_create(key, _aborting_factory)
                        except BudgetExceeded:
                            pass
                    else:
                        value = cache.get_or_create(
                            key, lambda k=key: ("ok", k)
                        )
                        assert value == ("ok", key)

            hammer(8, mixed_worker)
        # Each key was inserted by exactly one successful factory:
        # exactly four misses, however many aborts and races happened.
        counters = recorder.summary()["counters"]
        assert counters.get("kernels.cache.misses", 0) == 4
        for key in range(4):
            assert cache.get_or_create(key, pytest.fail) == ("ok", key)


def _aborting_factory():
    raise BudgetExceeded("cancelled mid-compilation")
