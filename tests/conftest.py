"""Shared fixtures: small structures and databases used across the suite."""

from fractions import Fraction

import pytest

from repro.kernels.cache import clear_caches
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.rng import make_rng


@pytest.fixture(autouse=True)
def _fresh_kernel_caches():
    """Isolate tests from the process-global compilation cache.

    Counter assertions (grounding, kernels.cache.*) would otherwise
    depend on which tests ran earlier in the process.  The persistent
    tier is deactivated too: a test that configures it must not leave
    later tests writing pickles into its (deleted) tmp directory.
    """
    from repro.kernels import cache_persist

    cache_persist.deactivate()
    clear_caches()
    yield
    cache_persist.deactivate()
    clear_caches()


@pytest.fixture(autouse=True)
def _no_active_cost_model():
    """Keep the module-level cost model inert between tests.

    A test that installs a calibrated model must not silently reorder
    the executor chains of every later test in the process.
    """
    from repro.runtime import costmodel

    previous = costmodel.set_model(None)
    yield
    costmodel.set_model(previous)


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def triangle():
    """A 3-node graph a->b->c with an S flag on b."""
    builder = StructureBuilder(["a", "b", "c"])
    builder.relation("E", 2)
    builder.relation("S", 1)
    builder.add("E", ("a", "b"))
    builder.add("E", ("b", "c"))
    builder.add("S", ("b",))
    return builder.build()


@pytest.fixture
def triangle_db(triangle):
    """The triangle with a few uncertain atoms at mixed rates."""
    mu = {
        Atom("E", ("a", "c")): Fraction(1, 10),
        Atom("E", ("a", "b")): Fraction(1, 4),
        Atom("S", ("a",)): Fraction(1, 3),
        Atom("S", ("b",)): Fraction(1, 5),
    }
    return UnreliableDatabase(triangle, mu)


@pytest.fixture
def certain_db(triangle):
    """The triangle with no uncertainty at all."""
    return UnreliableDatabase(triangle)
