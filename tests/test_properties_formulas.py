"""Property-based tests over randomly generated formula ASTs."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic.classify import classify, is_existential, is_quantifier_free
from repro.logic.evaluator import FOQuery, evaluate
from repro.logic.fo import (
    AtomF,
    Eq,
    Iff,
    Implies,
    conj,
    disj,
    exists,
    forall,
    free_variables,
    neg,
)
from repro.logic.parser import parse
from repro.logic.terms import Const, Var
from repro.relational.schema import Vocabulary
from repro.relational.structure import Structure
from repro.reliability.exact import truth_probability
from repro.reliability.unreliable import UnreliableDatabase

VARS = [Var(n) for n in ("x", "y", "z")]
UNIVERSE = ("a", "b")
VOCAB = Vocabulary([("E", 2), ("S", 1)])


def terms():
    return st.one_of(
        st.sampled_from(VARS),
        st.sampled_from([Const("a"), Const("b")]),
    )


def atoms():
    return st.one_of(
        st.builds(lambda t1, t2: AtomF("E", (t1, t2)), terms(), terms()),
        st.builds(lambda t: AtomF("S", (t,)), terms()),
        st.builds(Eq, terms(), terms()),
    )


def formulas(max_depth=4):
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            st.builds(neg, children),
            st.builds(lambda a, b: conj(a, b), children, children),
            st.builds(lambda a, b: disj(a, b), children, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
            st.builds(
                lambda v, f: exists([v], f), st.sampled_from(VARS), children
            ),
            st.builds(
                lambda v, f: forall([v], f), st.sampled_from(VARS), children
            ),
        ),
        max_leaves=8,
    )


def structures(draw):
    rows_e = draw(
        st.frozensets(
            st.tuples(st.sampled_from(UNIVERSE), st.sampled_from(UNIVERSE))
        )
    )
    rows_s = draw(st.frozensets(st.tuples(st.sampled_from(UNIVERSE))))
    return Structure(VOCAB, UNIVERSE, {"E": rows_e, "S": rows_s})


@given(formulas())
@settings(max_examples=120, deadline=None)
def test_parser_round_trip(formula):
    """str() output reparses to a semantically identical formula."""
    reparsed = parse(str(formula))
    assert reparsed == formula


@given(formulas(), st.data())
@settings(max_examples=80, deadline=None)
def test_negation_flips_truth(formula, data):
    structure = structures(data.draw)
    env = {
        var: data.draw(st.sampled_from(UNIVERSE), label=var.name)
        for var in free_variables(formula)
    }
    assert evaluate(structure, formula, dict(env)) != evaluate(
        structure, neg(formula), dict(env)
    )


@given(formulas())
@settings(max_examples=80, deadline=None)
def test_classification_is_consistent(formula):
    label = classify(formula)
    if label == "quantifier-free":
        assert is_quantifier_free(formula)
    if label in ("quantifier-free", "conjunctive", "existential"):
        assert is_existential(formula)


@given(formulas(), st.data())
@settings(max_examples=40, deadline=None)
def test_truth_probability_respects_complement(formula, data):
    """Pr[psi] + Pr[~psi] == 1 on random unreliable databases."""
    if free_variables(formula):
        return
    structure = structures(data.draw)
    error = data.draw(
        st.sampled_from([Fraction(1, 4), Fraction(1, 3), Fraction(1, 2)])
    )
    atoms_pool = sorted(structure.atoms(), key=repr)
    chosen = data.draw(
        st.frozensets(st.sampled_from(atoms_pool), max_size=3)
    )
    db = UnreliableDatabase(structure, {a: error for a in chosen})
    p = truth_probability(db, FOQuery(formula), method="worlds")
    q = truth_probability(db, FOQuery(neg(formula)), method="worlds")
    assert p + q == 1


@given(formulas(), st.data())
@settings(max_examples=30, deadline=None)
def test_exact_engines_agree_on_random_sentences(formula, data):
    if free_variables(formula):
        return
    structure = structures(data.draw)
    atoms_pool = sorted(structure.atoms(), key=repr)
    chosen = data.draw(st.frozensets(st.sampled_from(atoms_pool), max_size=3))
    db = UnreliableDatabase(structure, {a: Fraction(1, 3) for a in chosen})
    auto = truth_probability(db, FOQuery(formula))
    oracle = truth_probability(db, FOQuery(formula), method="worlds")
    assert auto == oracle
