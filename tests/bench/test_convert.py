"""Legacy BENCH_*.json conversion into the versioned schema."""

import json

import pytest

from repro.bench.convert import convert_all, convert_file
from repro.bench.history import History
from repro.bench.record import validate

COSTMODEL = {
    "benchmark": "costmodel",
    "workload": "12 cases, n=6 dbs",
    "calibrated_engines": ["exact", "karp_luby"],
    "static_total_s": 6.5,
    "calibrated_total_s": 0.04,
    "speedup": 153.45,
    "analyze_run_agreement": 1.0,
    "pass": True,
}

KERNELS = {
    "benchmark": "kernels",
    "samples": 100000,
    "repeats": 3,
    "e1_truth": {"workload": "E1 MC", "batched_s": 0.0008, "speedup_batched": 9.0},
    "e4_karp_luby": {"workload": "E4 KL", "batched_s": 0.106},
    "e9_karp_luby": {"workload": "E9 KL", "batched_s": 0.053},
    "gray_enumeration": {"workload": "gray 16", "gray_s": 0.238},
    "pass": True,
}

OBS = {
    "benchmark": "obs_overhead",
    "workload": "E1 qf n=24",
    "repeats": 25,
    "null_recorder_s": 0.0685,
    "stats_recorder_s": 0.0706,
    "traced_recorder_s": 0.0737,
    "overhead_pct": {"stats_vs_null": 3.1, "traced_vs_null": 7.7},
    "pass": True,
}

RACING = {
    "benchmark": "racing",
    "workload": "4 cases, stalled 0.6s",
    "sequential_total_s": 2.40,
    "racing_total_s": 1.05,
    "speedup": 2.28,
    "answers_agree": True,
    "pass": True,
}


@pytest.fixture
def legacy_root(tmp_path):
    for name, payload in (
        ("BENCH_costmodel.json", COSTMODEL),
        ("BENCH_kernels.json", KERNELS),
        ("BENCH_obs_overhead.json", OBS),
        ("BENCH_racing.json", RACING),
    ):
        (tmp_path / name).write_text(json.dumps(payload))
    return tmp_path


def test_convert_all_yields_valid_records(legacy_root):
    records = convert_all(str(legacy_root))
    # costmodel 2 + kernels 4 + obs 1 + racing 2
    assert len(records) == 9
    for record in records:
        payload = record.to_dict()
        validate(payload)
        assert payload["source"] == "legacy-convert"


def test_headline_seconds_extracted(legacy_root):
    records = {r.bench: r for r in convert_all(str(legacy_root))}
    assert records["runtime.costmodel_static"].seconds == 6.5
    assert records["runtime.costmodel_calibrated"].seconds == 0.04
    assert records["kernels.legacy_e1_truth"].seconds == 0.0008
    assert records["obs.legacy_overhead"].seconds == 0.0737
    assert records["runtime.racing_speculative"].seconds == 1.05


def test_free_form_payload_kept_in_extra(legacy_root):
    records = {r.bench: r for r in convert_all(str(legacy_root))}
    assert records["runtime.racing_sequential"].extra["speedup"] == 2.28
    assert (
        records["kernels.legacy_e1_truth"].extra["speedup_batched"] == 9.0
    )


def test_converted_records_seed_a_history(legacy_root, tmp_path):
    store = History(str(tmp_path / "seed.jsonl"))
    count = store.append_all(convert_all(str(legacy_root)))
    assert count == 9
    records, skipped = store.load()
    assert len(records) == 9 and skipped == 0


def test_unrecognised_shape_skipped(tmp_path):
    path = tmp_path / "BENCH_costmodel.json"
    path.write_text(json.dumps({"benchmark": "something-else"}))
    assert convert_file(str(path)) == []


def test_missing_files_tolerated(tmp_path):
    assert convert_all(str(tmp_path)) == []
