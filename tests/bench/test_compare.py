"""The robust-band regression gate — including the injected-slowdown
detection the harness exists for."""

from repro.bench.compare import (
    IMPROVED,
    NO_BASELINE,
    OK,
    REGRESSION,
    compare_against_history,
    compare_records,
    robust_band,
    self_compare,
)
from repro.bench.history import History
from repro.bench.record import (
    BenchResult,
    environment_fingerprint,
    wall_clock_stats,
)


def _record(bench="group.case", seconds=0.1, workload=None):
    return BenchResult(
        bench=bench,
        group=bench.split(".", 1)[0],
        workload=workload if workload is not None else {"size": 8},
        environment=environment_fingerprint(),
        methodology={"repeats": 1, "warmup": 0, "reduce": "median"},
        wall_clock=wall_clock_stats([seconds]),
    ).to_dict()


BASELINE = [_record(seconds=s) for s in (0.100, 0.104, 0.098, 0.101, 0.103)]


class TestRobustBand:
    def test_single_sample_uses_tolerance_floor(self):
        centre, band = robust_band([0.2])
        assert centre == 0.2
        assert band == 0.75 * 0.2

    def test_tolerance_floor_dominates_tight_series(self):
        centre, band = robust_band([0.100, 0.101, 0.099])
        assert band >= 0.75 * centre

    def test_absolute_floor_for_micro_benchmarks(self):
        _, band = robust_band([0.0001, 0.0001, 0.0001])
        assert band >= 0.005

    def test_wide_spread_widens_band(self):
        _, tight = robust_band([1.0, 1.01, 0.99])
        _, wide = robust_band([1.0, 2.0, 0.5])
        assert wide > tight


class TestCompareRecords:
    def test_stable_timing_is_ok(self):
        comparison = compare_records([_record(seconds=0.11)], BASELINE)
        assert comparison.verdicts[0].status == OK
        assert comparison.ok

    def test_detects_injected_5x_slowdown(self):
        """The acceptance criterion: a 5x slowdown must be flagged."""
        slow = _record(seconds=0.5)  # baseline median ~0.101
        comparison = compare_records([slow], BASELINE)
        verdict = comparison.verdicts[0]
        assert verdict.status == REGRESSION
        assert verdict.ratio > 4.5
        assert not comparison.ok
        assert "FAIL" in comparison.render()

    def test_just_inside_band_not_flagged(self):
        comparison = compare_records([_record(seconds=0.16)], BASELINE)
        assert comparison.verdicts[0].status == OK

    def test_large_speedup_reported_improved(self):
        comparison = compare_records([_record(seconds=0.02)], BASELINE)
        assert comparison.verdicts[0].status == IMPROVED
        assert comparison.ok  # improvements never fail the gate

    def test_new_benchmark_is_no_baseline(self):
        fresh = _record(bench="group.newcase", seconds=1.0)
        comparison = compare_records([fresh], BASELINE)
        assert comparison.verdicts[0].status == NO_BASELINE
        assert comparison.ok

    def test_changed_workload_restarts_trajectory(self):
        fresh = _record(seconds=99.0, workload={"size": 16})
        comparison = compare_records([fresh], BASELINE)
        verdict = comparison.verdicts[0]
        assert verdict.status == NO_BASELINE
        assert "workload changed" in verdict.message

    def test_window_limits_baseline(self):
        old_slow = [_record(seconds=5.0) for _ in range(10)]
        recent_fast = [_record(seconds=0.1) for _ in range(5)]
        comparison = compare_records(
            [_record(seconds=0.5)], old_slow + recent_fast, window=5
        )
        # Against the recent window the 5x jump is a regression; the old
        # slow era must not drag the median up.
        assert comparison.verdicts[0].status == REGRESSION

    def test_accepts_benchresult_objects(self):
        result = BenchResult.from_dict(_record(seconds=0.11))
        comparison = compare_records([result], BASELINE)
        assert comparison.verdicts[0].status == OK


class TestHistoryIntegration:
    def test_compare_against_history(self, tmp_path):
        store = History(str(tmp_path / "h.jsonl"))
        for record in BASELINE:
            store.append(record)
        comparison = compare_against_history([_record(seconds=0.5)], store)
        assert comparison.verdicts[0].status == REGRESSION

    def test_self_compare_healthy_trajectory(self, tmp_path):
        store = History(str(tmp_path / "h.jsonl"))
        for record in BASELINE:
            store.append(record)
        comparison = self_compare(store)
        assert comparison.ok
        assert comparison.verdicts[0].status == OK

    def test_self_compare_flags_regressed_tip(self, tmp_path):
        store = History(str(tmp_path / "h.jsonl"))
        for record in BASELINE:
            store.append(record)
        store.append(_record(seconds=0.5))  # the 5x tip
        comparison = self_compare(store)
        assert not comparison.ok

    def test_self_compare_single_record_groups(self, tmp_path):
        store = History(str(tmp_path / "h.jsonl"))
        store.append(_record(seconds=0.1))
        comparison = self_compare(store)
        assert comparison.verdicts[0].status == NO_BASELINE
        assert comparison.ok


def test_render_lists_counts():
    comparison = compare_records(
        [_record(seconds=0.11), _record(bench="group.new", seconds=0.1)],
        BASELINE,
    )
    rendered = comparison.render()
    assert "1 ok" in rendered and "1 no-baseline" in rendered
    assert rendered.splitlines()[-1].startswith("PASS")
