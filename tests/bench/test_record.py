"""The schema-versioned benchmark record: validation and migration."""

from fractions import Fraction

import pytest

from repro.bench.record import (
    SCHEMA_VERSION,
    BenchResult,
    SchemaError,
    environment_fingerprint,
    migrate,
    validate,
    wall_clock_stats,
    workload_key,
)


def _result(**overrides):
    fields = dict(
        bench="group.case",
        group="group",
        workload={"size": 8},
        environment=environment_fingerprint(),
        methodology={"repeats": 3, "warmup": 1, "reduce": "median"},
        wall_clock=wall_clock_stats([0.1, 0.2, 0.3]),
    )
    fields.update(overrides)
    return BenchResult(**fields)


class TestWorkloadKey:
    def test_stable_across_key_order(self):
        assert workload_key({"a": 1, "b": 2}) == workload_key({"b": 2, "a": 1})

    def test_differs_on_value_change(self):
        assert workload_key({"a": 1}) != workload_key({"a": 2})

    def test_quick_flag_forks_the_key(self):
        full = {"sizes": [4, 8]}
        quick = dict(full, quick=True)
        assert workload_key(full) != workload_key(quick)

    def test_non_json_values_keyed_via_str(self):
        assert workload_key({"eps": Fraction(1, 10)}) == workload_key(
            {"eps": Fraction(1, 10)}
        )


class TestWallClockStats:
    def test_median_headline(self):
        stats = wall_clock_stats([0.3, 0.1, 0.2])
        assert stats["seconds"] == 0.2
        assert stats["min"] == 0.1
        assert stats["max"] == 0.3
        assert stats["samples"] == [0.3, 0.1, 0.2]

    def test_min_reduction(self):
        assert wall_clock_stats([0.3, 0.1], reduce="min")["seconds"] == 0.1

    def test_single_sample_has_zero_stdev(self):
        assert wall_clock_stats([0.5])["stdev"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            wall_clock_stats([])

    def test_unknown_reduction_rejected(self):
        with pytest.raises(SchemaError):
            wall_clock_stats([0.1], reduce="mode")


class TestBenchResult:
    def test_round_trip(self):
        original = _result(extra={"speedup": 3.2})
        rebuilt = BenchResult.from_dict(original.to_dict())
        assert rebuilt.to_dict() == original.to_dict()

    def test_workload_key_computed(self):
        result = _result()
        assert result.workload_key == workload_key({"size": 8})

    def test_dict_validates(self):
        record = _result().to_dict()
        validate(record)  # no raise
        assert record["schema_version"] == SCHEMA_VERSION

    def test_seconds_property(self):
        assert _result().seconds == 0.2

    def test_fraction_workload_serialises(self):
        result = _result(workload={"error": Fraction(1, 16)})
        record = result.to_dict()
        assert record["workload"]["error"] == "1/16"


class TestValidate:
    def test_missing_field_rejected(self):
        record = _result().to_dict()
        del record["wall_clock"]
        with pytest.raises(SchemaError, match="missing"):
            validate(record)

    def test_undotted_bench_id_rejected(self):
        record = _result().to_dict()
        record["bench"] = "nodots"
        with pytest.raises(SchemaError, match="dotted"):
            validate(record)

    def test_negative_seconds_rejected(self):
        record = _result().to_dict()
        record["wall_clock"]["seconds"] = -1.0
        with pytest.raises(SchemaError, match=">= 0"):
            validate(record)

    def test_stale_workload_key_rejected(self):
        record = _result().to_dict()
        record["workload"]["size"] = 9  # key no longer matches
        with pytest.raises(SchemaError, match="workload_key"):
            validate(record)

    def test_wrong_version_rejected(self):
        record = _result().to_dict()
        record["schema_version"] = 0
        with pytest.raises(SchemaError):
            validate(record)


class TestMigrate:
    def test_current_version_passes_through(self):
        record = _result().to_dict()
        assert migrate(record) == record

    def test_missing_version_rejected(self):
        record = _result().to_dict()
        del record["schema_version"]
        with pytest.raises(SchemaError, match="schema_version"):
            migrate(record)

    def test_future_version_rejected(self):
        record = _result().to_dict()
        record["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="newer"):
            migrate(record)

    def test_empty_key_recomputed(self):
        record = _result().to_dict()
        record["workload_key"] = ""
        migrated = migrate(record)
        assert migrated["workload_key"] == workload_key(record["workload"])
