"""The append-only trajectory store."""

from repro.bench.history import History
from repro.bench.record import (
    BenchResult,
    environment_fingerprint,
    wall_clock_stats,
)


def _result(bench="group.case", seconds=0.1, workload=None):
    return BenchResult(
        bench=bench,
        group=bench.split(".", 1)[0],
        workload=workload if workload is not None else {"size": 8},
        environment=environment_fingerprint(),
        methodology={"repeats": 1, "warmup": 0, "reduce": "median"},
        wall_clock=wall_clock_stats([seconds]),
    )


def test_append_and_load(tmp_path):
    store = History(str(tmp_path / "h.jsonl"))
    store.append(_result(seconds=0.1))
    store.append(_result(seconds=0.2))
    records, skipped = store.load()
    assert len(records) == 2 and skipped == 0
    assert [r["wall_clock"]["seconds"] for r in records] == [0.1, 0.2]


def test_missing_file_is_empty(tmp_path):
    store = History(str(tmp_path / "none.jsonl"))
    assert not store.exists()
    assert store.load() == ([], 0)
    assert store.latest("group.case") is None


def test_corrupt_lines_skipped_not_fatal(tmp_path):
    path = tmp_path / "h.jsonl"
    store = History(str(path))
    store.append(_result(seconds=0.1))
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"schema_version": 99}\n')
        handle.write("\n")
    store.append(_result(seconds=0.2))
    records, skipped = store.load()
    assert len(records) == 2
    assert skipped == 2  # the blank line is ignored, not counted


def test_corrupt_lines_are_loudly_counted(tmp_path, caplog):
    # Skipping is silent resilience for the trend tooling but must not
    # be silent to operators: each skip logs a warning naming the file
    # and line, and increments bench.history.skipped_lines.
    import logging

    from repro import obs

    path = tmp_path / "h.jsonl"
    store = History(str(path))
    store.append(_result(seconds=0.1))
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"schema_version": 99}\n')
    recorder = obs.StatsRecorder()
    with obs.use(recorder):
        with caplog.at_level(logging.WARNING, logger="repro.bench.history"):
            _, skipped = store.load()
    assert skipped == 2
    counters = recorder.summary()["counters"]
    assert counters["bench.history.skipped_lines"] == 2
    messages = [record.getMessage() for record in caplog.records]
    assert len(messages) == 2
    assert all("skipping corrupt history line" in m for m in messages)
    assert any(f"{path}:2" in m for m in messages)
    assert any(f"{path}:3" in m for m in messages)


def test_records_for_filters_bench_and_key(tmp_path):
    store = History(str(tmp_path / "h.jsonl"))
    store.append(_result("a.one", 0.1, {"n": 1}))
    store.append(_result("a.one", 0.2, {"n": 2}))
    store.append(_result("a.two", 0.3))
    assert len(store.records_for("a.one")) == 2
    key = store.records_for("a.one")[0]["workload_key"]
    assert len(store.records_for("a.one", workload_key=key)) == 1
    assert store.benches() == ["a.one", "a.two"]


def test_window_keeps_most_recent(tmp_path):
    store = History(str(tmp_path / "h.jsonl"))
    for index in range(5):
        store.append(_result(seconds=0.1 * (index + 1)))
    trend = store.trend("group.case", window=2)
    assert [seconds for _, seconds in trend] == [0.4, 0.5]


def test_grouped_separates_workloads(tmp_path):
    store = History(str(tmp_path / "h.jsonl"))
    store.append(_result(workload={"n": 1}))
    store.append(_result(workload={"n": 1}))
    store.append(_result(workload={"n": 2}))
    groups = store.grouped()
    assert len(groups) == 2
    assert sorted(len(records) for records in groups.values()) == [1, 2]


def test_append_validates(tmp_path):
    import pytest

    from repro.bench.record import SchemaError

    store = History(str(tmp_path / "h.jsonl"))
    with pytest.raises(SchemaError):
        store.append({"schema_version": 1, "bench": "broken"})
    assert not store.exists()  # nothing was written
