"""The ``repro bench`` CLI family, driven through ``cli.main``."""

import json

import pytest

from repro import obs
from repro.bench.history import History
from repro.bench.record import migrate, validate
from repro.bench.registry import BenchCase, register_case, unregister
from repro.cli import main


@pytest.fixture
def tiny_case():
    def fn(params):
        with obs.span("tiny.work"):
            obs.inc("tiny.calls")
        return {"n": params["n"]}

    case = BenchCase(
        bench_id="testcli.tiny",
        group="testcli",
        fn=fn,
        params={"n": 3},
        quick={"n": 1},
        repeats=2,
        quick_repeats=1,
        warmup=0,
    )
    register_case(case)
    try:
        yield case
    finally:
        unregister(case.bench_id)


def test_bench_list_names_cases(tiny_case, capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    assert "testcli.tiny" in out
    assert "experiments.e1_qf_reliability" in out


def test_bench_run_records_and_appends(tiny_case, tmp_path, capsys):
    history = tmp_path / "h.jsonl"
    out_file = tmp_path / "fresh.jsonl"
    code = main(
        [
            "bench", "run", "testcli.tiny", "--quick",
            "--history", str(history), "--out", str(out_file),
        ]
    )
    assert code == 0
    records = History(str(history)).records()
    assert len(records) == 1
    record = records[0]
    validate(record)
    assert record["bench"] == "testcli.tiny"
    assert record["metrics"]["counters"]["tiny.calls"] == 1
    assert {p["name"] for p in record["profile"]["phases"]} == {"tiny.work"}
    fresh = [json.loads(line) for line in out_file.read_text().splitlines()]
    assert len(fresh) == 1
    validate(migrate(fresh[0]))


def test_bench_run_no_append_leaves_history_alone(tiny_case, tmp_path):
    history = tmp_path / "h.jsonl"
    out_file = tmp_path / "fresh.jsonl"
    code = main(
        [
            "bench", "run", "testcli.tiny", "--quick", "--no-append",
            "--history", str(history), "--out", str(out_file),
        ]
    )
    assert code == 0
    assert not history.exists()
    assert out_file.exists()


def test_bench_run_requires_selection(tiny_case, capsys):
    assert main(["bench", "run"]) == 2


def test_bench_compare_gate_passes_then_fails_on_slowdown(
    tiny_case, tmp_path, capsys
):
    history = History(str(tmp_path / "h.jsonl"))
    for _ in range(3):
        main(
            [
                "bench", "run", "testcli.tiny", "--quick",
                "--history", history.path,
            ]
        )
    capsys.readouterr()

    # Healthy: same-speed fresh run against the trajectory.
    out_file = tmp_path / "fresh.jsonl"
    main(
        [
            "bench", "run", "testcli.tiny", "--quick", "--no-append",
            "--history", history.path, "--out", str(out_file),
        ]
    )
    assert (
        main(
            [
                "bench", "compare", "--fresh", str(out_file),
                "--history", history.path,
            ]
        )
        == 0
    )
    assert "PASS" in capsys.readouterr().out

    # Injected 5x slowdown: rewrite the fresh record's wall clock.
    fresh = [
        json.loads(line) for line in out_file.read_text().splitlines()
    ]
    baseline_median = sorted(
        r["wall_clock"]["seconds"] for r in history.records()
    )[1]
    slow = 5.0 * max(baseline_median, 0.05)
    fresh[0]["wall_clock"]["seconds"] = slow
    fresh[0]["wall_clock"]["min"] = slow
    fresh[0]["wall_clock"]["max"] = slow
    fresh[0]["wall_clock"]["mean"] = slow
    fresh[0]["wall_clock"]["samples"] = [slow]
    out_file.write_text(json.dumps(fresh[0]) + "\n")
    assert (
        main(
            [
                "bench", "compare", "--fresh", str(out_file),
                "--history", history.path,
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "regression" in out and "FAIL" in out


def test_bench_compare_self_mode(tiny_case, tmp_path, capsys):
    history = History(str(tmp_path / "h.jsonl"))
    for _ in range(2):
        main(
            [
                "bench", "run", "testcli.tiny", "--quick",
                "--history", history.path,
            ]
        )
    assert main(["bench", "compare", "--history", history.path]) == 0


def test_bench_compare_missing_history_errors(tmp_path, capsys):
    code = main(
        ["bench", "compare", "--history", str(tmp_path / "none.jsonl")]
    )
    assert code == 2


def test_bench_report_trend_and_detail(tiny_case, tmp_path, capsys):
    history = History(str(tmp_path / "h.jsonl"))
    for _ in range(2):
        main(
            [
                "bench", "run", "testcli.tiny", "--quick",
                "--history", history.path,
            ]
        )
    capsys.readouterr()
    assert main(["bench", "report", "--history", history.path]) == 0
    assert "testcli.tiny" in capsys.readouterr().out
    assert (
        main(["bench", "report", "testcli.tiny", "--history", history.path])
        == 0
    )
    detail = capsys.readouterr().out
    assert "2 recorded run(s)" in detail
    assert "span profile" in detail


def test_bench_migrate(tmp_path, capsys):
    legacy = {
        "benchmark": "obs_overhead",
        "workload": "E1 qf n=24",
        "repeats": 5,
        "null_recorder_s": 0.068,
        "stats_recorder_s": 0.070,
        "traced_recorder_s": 0.073,
        "overhead_pct": {"stats_vs_null": 3.0, "traced_vs_null": 7.0},
        "pass": True,
    }
    (tmp_path / "BENCH_obs_overhead.json").write_text(json.dumps(legacy))
    history = tmp_path / "h.jsonl"
    code = main(
        [
            "bench", "migrate", "--root", str(tmp_path),
            "--history", str(history),
        ]
    )
    assert code == 0
    records = History(str(history)).records()
    assert len(records) == 1
    assert records[0]["bench"] == "obs.legacy_overhead"
    assert records[0]["source"] == "legacy-convert"
