"""The benchmark runner: methodology, registry interplay, records."""

import pytest

from repro import obs
from repro.bench.record import SCHEMA_VERSION, validate
from repro.bench.registry import (
    BenchCase,
    UnknownBenchmark,
    all_cases,
    get_case,
    register_case,
    unregister,
    workload,
)
from repro.bench.runner import run_case, run_many


@pytest.fixture
def sleeper_case():
    calls = {"count": 0}

    def fn(params):
        calls["count"] += 1
        with obs.span("fake.work", n=params["n"]):
            obs.inc("fake.calls")
        return {"answer": params["n"] * 2}

    case = BenchCase(
        bench_id="testgroup.sleeper",
        group="testgroup",
        fn=fn,
        params={"n": 4},
        quick={"n": 2},
        repeats=3,
        quick_repeats=1,
        warmup=1,
    )
    register_case(case)
    try:
        yield case, calls
    finally:
        unregister(case.bench_id)


def test_run_case_produces_valid_record(sleeper_case):
    case, calls = sleeper_case
    result = run_case(case)
    record = result.to_dict()
    validate(record)
    assert record["schema_version"] == SCHEMA_VERSION
    assert record["bench"] == "testgroup.sleeper"
    assert calls["count"] == 4  # 1 warmup + 3 repeats
    assert record["methodology"] == {
        "repeats": 3,
        "warmup": 1,
        "timer": "perf_counter",
        "reduce": "median",
        "quick": False,
    }
    assert len(record["wall_clock"]["samples"]) == 3


def test_metrics_and_profile_captured(sleeper_case):
    case, _ = sleeper_case
    record = run_case(case).to_dict()
    assert record["metrics"]["counters"]["fake.calls"] == 1
    phases = {p["name"] for p in record["profile"]["phases"]}
    assert "fake.work" in phases


def test_extra_comes_from_case_return(sleeper_case):
    case, _ = sleeper_case
    record = run_case(case).to_dict()
    assert record["extra"] == {"answer": 8}


def test_quick_mode_forks_workload_key(sleeper_case):
    case, _ = sleeper_case
    full = run_case(case)
    quick = run_case(case, quick=True)
    assert quick.workload == {"n": 2, "quick": True}
    assert quick.workload_key != full.workload_key
    assert quick.methodology["quick"] is True
    assert len(quick.wall_clock["samples"]) == 1


def test_repeats_override(sleeper_case):
    case, calls = sleeper_case
    run_case(case, repeats=2, warmup=0)
    assert calls["count"] == 2


def test_zero_repeats_rejected(sleeper_case):
    case, _ = sleeper_case
    with pytest.raises(ValueError):
        run_case(case, repeats=0)


def test_run_case_by_id(sleeper_case):
    result = run_case("testgroup.sleeper", quick=True)
    assert result.bench == "testgroup.sleeper"


def test_run_many_by_ids(sleeper_case):
    results = run_many(["testgroup.sleeper"], quick=True)
    assert [r.bench for r in results] == ["testgroup.sleeper"]


def test_recorder_restored_after_run(sleeper_case):
    case, _ = sleeper_case
    before = obs.get_recorder()
    run_case(case, quick=True)
    assert obs.get_recorder() is before


class TestRegistry:
    def test_unknown_benchmark_raises(self):
        with pytest.raises(UnknownBenchmark):
            get_case("nope.missing")

    def test_double_registration_rejected(self, sleeper_case):
        case, _ = sleeper_case
        with pytest.raises(ValueError, match="twice"):
            register_case(case)

    def test_builtin_cases_registered(self):
        ids = {case.bench_id for case in all_cases()}
        assert "experiments.e1_qf_reliability" in ids
        assert "kernels.mc_truth" in ids
        assert "obs.overhead" in ids
        assert "runtime.racing" in ids
        assert len(ids) >= 18

    def test_group_filter(self):
        kernels = all_cases(group="kernels")
        assert kernels and all(c.group == "kernels" for c in kernels)

    def test_workload_accessor_returns_copy(self):
        first = workload("experiments.e1_qf_reliability")
        first["sizes"] = []
        assert workload("experiments.e1_qf_reliability")["sizes"]

    def test_ids_are_group_dotted(self):
        for case in all_cases():
            assert case.bench_id.startswith(case.group + ".")
