"""Property-based tests for the Datalog engine, the algebra compiler and
the lifted-inference engine, each against an independent oracle."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic.algebra import rel
from repro.logic.conjunctive import ConjunctiveQuery
from repro.logic.datalog import reachability_query
from repro.relational.schema import Vocabulary
from repro.relational.structure import Structure
from repro.reliability.exact import truth_probability
from repro.reliability.lifted import (
    UnsafeQueryError,
    is_safe,
    lifted_probability,
)
from repro.reliability.unreliable import UnreliableDatabase

NODES = (0, 1, 2, 3)
GRAPH_VOCAB = Vocabulary([("E", 2)])

edges_strategy = st.frozensets(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    max_size=10,
)


def _floyd_warshall(edges):
    reach = {(u, v) for u, v in edges}
    changed = True
    while changed:
        changed = False
        for (a, b) in list(reach):
            for (c, d) in list(reach):
                if b == c and (a, d) not in reach:
                    reach.add((a, d))
                    changed = True
    return reach


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_datalog_reachability_matches_transitive_closure(edges):
    structure = Structure(GRAPH_VOCAB, NODES, {"E": edges})
    assert reachability_query().answers(structure) == _floyd_warshall(edges)


STORE_VOCAB = Vocabulary([("R", 1), ("S", 2)])
ELEMENTS = ("a", "b", "c")


@st.composite
def stores(draw):
    rows_r = draw(st.frozensets(st.tuples(st.sampled_from(ELEMENTS))))
    rows_s = draw(
        st.frozensets(
            st.tuples(st.sampled_from(ELEMENTS), st.sampled_from(ELEMENTS))
        )
    )
    return Structure(STORE_VOCAB, ELEMENTS, {"R": rows_r, "S": rows_s})


ALGEBRA_CASES = [
    lambda: rel("S", "x", "y"),
    lambda: rel("S", "x", "y").project("x"),
    lambda: rel("R", "x").join(rel("S", "x", "y")),
    lambda: rel("R", "x").join(rel("S", "x", "y")).project("y"),
    lambda: rel("R", "x").union(rel("S", "x", "y").project("x")),
    lambda: rel("R", "x").difference(rel("S", "x", "y").project("x")),
    lambda: rel("S", "x", "y").select(y="a"),
    lambda: rel("S", "x", "y").select_eq("x", "y"),
]


@given(st.sampled_from(ALGEBRA_CASES), stores())
@settings(max_examples=100, deadline=None)
def test_algebra_compilation_agrees_with_set_semantics(make, store):
    expr = make()
    assert expr.to_fo_query().answers(store) == expr.rows(store)


probabilities = st.sampled_from(
    [Fraction(1, 4), Fraction(1, 3), Fraction(1, 2), Fraction(0)]
)


@st.composite
def unreliable_stores(draw):
    store = draw(stores())
    mu = {}
    for atom in store.atoms():
        p = draw(probabilities)
        if p:
            mu[atom] = p
    return UnreliableDatabase(store, mu)


SAFE_QUERIES = [
    "exists x. R(x)",
    "exists x y. S(x, y)",
    "exists x y. R(x) & S(x, y)",
]


@given(st.sampled_from(SAFE_QUERIES), unreliable_stores())
@settings(max_examples=40, deadline=None)
def test_lifted_inference_matches_world_enumeration(text, db):
    query = ConjunctiveQuery.from_text(text)
    assert is_safe(query)
    lifted = lifted_probability(db, query)
    oracle = truth_probability(db, query.to_formula(), method="worlds")
    assert lifted == oracle


# ---------------------------------------------------------------------- #
# BDD engine properties
# ---------------------------------------------------------------------- #

from repro.propositional.bdd import (
    compile_dnf,
    influences_via_bdd,
    probability_via_bdd,
)
from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, Literal

_bdd_variables = st.sampled_from(["p", "q", "r", "s", "t"])
_bdd_literals = st.builds(Literal, _bdd_variables, st.booleans())
_bdd_clauses = st.builds(Clause, st.lists(_bdd_literals, min_size=1, max_size=3))
_bdd_dnfs = st.builds(DNF, st.lists(_bdd_clauses, min_size=0, max_size=6))
_bdd_probs = st.builds(
    Fraction, st.integers(min_value=1, max_value=7), st.just(8)
)


@st.composite
def _weighted_bdd_dnfs(draw):
    dnf = draw(_bdd_dnfs)
    probs = {v: draw(_bdd_probs) for v in dnf.variables}
    return dnf, probs


@given(_weighted_bdd_dnfs())
@settings(max_examples=60, deadline=None)
def test_bdd_probability_matches_shannon(case):
    dnf, probs = case
    assert probability_via_bdd(dnf, probs) == probability_exact(dnf, probs)


@given(_weighted_bdd_dnfs())
@settings(max_examples=40, deadline=None)
def test_bdd_influences_match_conditioning(case):
    dnf, probs = case
    if dnf.is_true() or dnf.is_false():
        return
    influences = influences_via_bdd(dnf, probs)
    for variable in dnf.variables:
        high = probability_exact(dnf.restrict(variable, True), probs)
        low = probability_exact(dnf.restrict(variable, False), probs)
        assert influences[variable] == high - low


@given(_bdd_dnfs)
@settings(max_examples=60, deadline=None)
def test_bdd_canonicity(dnf):
    """Equivalent formulas share a root under the same order."""
    order = sorted({v for v in dnf.variables} | {"p", "q", "r", "s", "t"})
    diagram1, root1 = compile_dnf(dnf, order=order)
    # Rebuild from a clause permutation: same function, same root id
    # within ONE shared diagram (canonicity of reduced OBDDs).
    diagram = diagram1
    rebuilt = 0
    for clause in reversed(dnf.clauses):
        node = 1
        for literal in sorted(clause, key=lambda l: repr(l.variable)):
            leaf = (
                diagram.var(literal.variable)
                if literal.positive
                else diagram.nvar(literal.variable)
            )
            node = diagram.conj(node, leaf)
        rebuilt = diagram.disj(rebuilt, node)
    assert rebuilt == root1


# ---------------------------------------------------------------------------
# Calibrated chain ordering: tier-safety under arbitrary calibrations.

from repro.runtime.costmodel import (  # noqa: E402
    FEATURE_NAMES,
    CostModel,
    EngineCalibration,
    engine_guarantee,
)

_ENGINE_NAMES = ("exact", "lifted", "karp_luby", "montecarlo")
_weights = st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    min_size=len(FEATURE_NAMES) + 1,
    max_size=len(FEATURE_NAMES) + 1,
)
_calibrations = st.dictionaries(
    st.sampled_from(_ENGINE_NAMES),
    st.builds(
        EngineCalibration,
        weights=_weights.map(tuple),
        observations=st.integers(min_value=3, max_value=50),
        rmse=st.floats(min_value=0.0, max_value=10.0),
    ),
)
_chains = st.lists(st.sampled_from(_ENGINE_NAMES), min_size=1, max_size=8)
_features = st.fixed_dictionaries(
    {
        name: st.floats(
            min_value=0.0, max_value=1e30, allow_nan=False
        )
        for name in FEATURE_NAMES
    }
)


def _tier_runs(chain, quantity):
    """Maximal consecutive same-tier runs as (tier, engine-multiset)."""
    runs = []
    for engine in chain:
        tier = engine_guarantee(engine, quantity)
        if runs and runs[-1][0] == tier:
            runs[-1][1].append(engine)
        else:
            runs.append((tier, [engine]))
    return [(tier, sorted(names)) for tier, names in runs]


@given(
    _calibrations,
    _chains,
    _features,
    st.sampled_from(["reliability", "probability"]),
)
@settings(max_examples=200, deadline=None)
def test_order_chain_permutes_only_within_guarantee_tiers(
    calibrations, chain, features, quantity
):
    """Adversarial calibrations (NaN/inf/huge weights) may reorder a
    chain only inside maximal same-tier runs: the tier sequence and each
    run's engine multiset are invariant, so the executor's degradation
    contract (exact > relative > additive) survives any cost table."""
    model = CostModel(dict(calibrations), source="property-fuzz")
    ordered = model.order_chain(tuple(chain), features, quantity)
    assert sorted(ordered) == sorted(chain)
    assert _tier_runs(ordered, quantity) == _tier_runs(chain, quantity)
    # Ordering is deterministic: same inputs, same permutation.
    assert ordered == model.order_chain(tuple(chain), features, quantity)
