"""Property suite: delta answers equal cold recomputes, bit for bit.

The central invariant of :mod:`repro.delta`: after **any** stream of
``set_mu`` / ``insert`` / ``delete`` updates, the maintained Fraction
equals ``truth_probability`` (and ``reliability``) evaluated from
scratch on the session's current database.  Equality is ``==`` on
exact Fractions — one bit of drift fails the property.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.delta import DeltaSession
from repro.kernels import cache_persist
from repro.kernels.cache import clear_caches
from repro.relational.atoms import Atom
from repro.relational.schema import Vocabulary
from repro.relational.structure import Structure
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.grounding import ground_existential_to_dnf
from repro.reliability.unreliable import UnreliableDatabase

UNIVERSE = ("a", "b")
VOCAB = Vocabulary([("E", 2), ("S", 1)])
ALL_ATOMS = tuple(
    Atom("E", (x, y)) for x in UNIVERSE for y in UNIVERSE
) + tuple(Atom("S", (x,)) for x in UNIVERSE)

QUERIES = (
    "exists x y. E(x, y) & E(y, x)",
    "exists x. S(x) & E(x, x)",
    "exists x y. S(x) & E(x, y) & ~E(y, x)",
    "forall x. S(x)",
)

probabilities = st.builds(
    Fraction, st.integers(min_value=0, max_value=8), st.just(8)
)


@st.composite
def unreliable_dbs(draw):
    rows_e = draw(
        st.frozensets(
            st.tuples(st.sampled_from(UNIVERSE), st.sampled_from(UNIVERSE))
        )
    )
    rows_s = draw(st.frozensets(st.tuples(st.sampled_from(UNIVERSE))))
    structure = Structure(VOCAB, UNIVERSE, {"E": rows_e, "S": rows_s})
    mu = {}
    for atom in draw(st.frozensets(st.sampled_from(ALL_ATOMS), max_size=4)):
        mu[atom] = draw(probabilities)
    return UnreliableDatabase(structure, mu)


@st.composite
def update_streams(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["set_mu", "insert", "delete"]))
        atom = draw(st.sampled_from(ALL_ATOMS))
        if kind == "set_mu":
            ops.append((kind, atom, draw(probabilities)))
        else:
            ops.append((kind, atom))
    return ops


def _apply(session, op):
    if op[0] == "set_mu":
        session.set_mu(op[1], op[2])
    elif op[0] == "insert":
        session.insert(op[1])
    else:
        session.delete(op[1])


@given(unreliable_dbs(), update_streams(), st.sampled_from(QUERIES))
@settings(max_examples=40, deadline=None)
def test_delta_stream_equals_cold_recompute(db, ops, query):
    session = DeltaSession(db, query)
    assert session.probability() == truth_probability(db, query)
    for op in ops:
        _apply(session, op)
        assert session.probability() == truth_probability(session.db, query)
    assert session.reliability() == reliability(session.db, query)
    # The escape hatch lands on the same value the deltas maintained.
    assert session.recompute() == truth_probability(session.db, query)


@given(unreliable_dbs(), update_streams())
@settings(max_examples=25, deadline=None)
def test_interleaved_queries_share_one_database(db, ops):
    """Two sessions over the same stream stay mutually consistent."""
    first = DeltaSession(db, QUERIES[0])
    second = DeltaSession(db, QUERIES[1])
    for op in ops:
        _apply(first, op)
        _apply(second, op)
        assert first.db.fingerprint() == second.db.fingerprint()
        assert first.probability() == truth_probability(
            first.db, QUERIES[0]
        )
        assert second.probability() == truth_probability(
            second.db, QUERIES[1]
        )


@given(unreliable_dbs(), st.sampled_from(QUERIES[:3]))
@settings(max_examples=25, deadline=None)
def test_persist_round_trip_preserves_the_plan(tmp_path_factory, db, query):
    """A grounding written to disk reloads equal, and answers match."""
    directory = tmp_path_factory.mktemp("persist")
    cache_persist.configure(str(directory))
    try:
        clear_caches()
        formula = DeltaSession(db, query)._base
        cold_dnf = ground_existential_to_dnf(db, formula)
        cold = truth_probability(db, query)
        clear_caches()  # drop memory; the disk tier survives
        warm_dnf = ground_existential_to_dnf(db, formula)
        assert warm_dnf == cold_dnf  # plan equality through the pickle
        assert truth_probability(db, query) == cold
    finally:
        cache_persist.deactivate()
        clear_caches()
