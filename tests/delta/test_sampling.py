"""ReweightableKarpLuby: sample reuse under importance re-weighting."""

from fractions import Fraction

import pytest

from repro.delta import DeltaSession, ReweightableKarpLuby
from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, Literal
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.exact import truth_probability
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import ProbabilityError
from repro.util.rng import make_rng


def _dnf():
    return DNF(
        [
            Clause([Literal("p", True), Literal("q", True)]),
            Clause([Literal("q", True), Literal("r", False)]),
            Clause([Literal("p", False), Literal("r", True)]),
        ]
    )


def _exact(dnf, probs):
    return float(
        probability_exact(
            dnf, {v: Fraction(p).limit_denominator() for v, p in probs.items()}
        )
    )


class TestEstimates:
    def test_initial_estimate_tracks_exact(self):
        dnf = _dnf()
        probs = {"p": 0.25, "q": 0.5, "r": 0.125}
        sampler = ReweightableKarpLuby(dnf, probs, 20000, make_rng(7))
        assert sampler.estimate() == pytest.approx(
            _exact(dnf, probs), abs=0.02
        )

    def test_reweighted_estimate_tracks_new_exact(self):
        dnf = _dnf()
        probs = {"p": 0.25, "q": 0.5, "r": 0.125}
        sampler = ReweightableKarpLuby(dnf, probs, 20000, make_rng(7))
        sampler.set_prob("p", 0.4)
        sampler.set_prob("r", 0.3)
        new_probs = {"p": 0.4, "q": 0.5, "r": 0.3}
        assert sampler.estimate() == pytest.approx(
            _exact(dnf, new_probs), abs=0.03
        )

    def test_unknown_variable_is_a_noop(self):
        dnf = _dnf()
        probs = {"p": 0.25, "q": 0.5, "r": 0.125}
        sampler = ReweightableKarpLuby(dnf, probs, 2000, make_rng(7))
        before = sampler.estimate()
        sampler.set_prob("zz", 0.9)
        assert sampler.estimate() == before

    def test_ess_degrades_with_drift(self):
        dnf = _dnf()
        probs = {"p": 0.25, "q": 0.5, "r": 0.125}
        sampler = ReweightableKarpLuby(dnf, probs, 5000, make_rng(7))
        fresh = sampler.effective_sample_size()
        assert fresh == pytest.approx(5000)
        sampler.set_prob("p", 0.9)
        sampler.set_prob("q", 0.05)
        drifted = sampler.effective_sample_size()
        assert 0 < drifted < fresh

    def test_trivial_dnfs_start_stale(self):
        sampler = ReweightableKarpLuby(DNF([]), {}, 100, make_rng(1))
        assert sampler.stale
        with pytest.raises(ProbabilityError):
            sampler.estimate()


class TestSessionIntegration:
    def _session(self):
        builder = StructureBuilder(range(3))
        builder.relation("E", 2)
        for pair in [(0, 1), (1, 0), (1, 2), (2, 1)]:
            builder.add("E", pair)
        mu = {
            Atom("E", pair): Fraction(1, 8)
            for pair in [(0, 1), (1, 0), (1, 2), (2, 1)]
        }
        db = UnreliableDatabase(builder.build(), mu)
        return DeltaSession(db, "exists x y. E(x, y) & E(y, x)")

    def test_attached_sampler_tracks_weight_updates(self):
        session = self._session()
        sampler = session.attach_karp_luby(20000, make_rng(11))
        assert sampler.estimate() == pytest.approx(
            float(session.probability()), abs=0.02
        )
        session.set_mu(Atom("E", (0, 1)), Fraction(1, 3))
        assert sampler.estimate() == pytest.approx(
            float(session.probability()), abs=0.03
        )

    def test_structural_update_marks_sampler_stale(self):
        session = self._session()
        sampler = session.attach_karp_luby(1000, make_rng(11))
        session.insert(Atom("E", (2, 0)))  # deterministic: structural
        assert sampler.stale
        with pytest.raises(ProbabilityError):
            sampler.estimate()
        # Redraw resumes service against the new DNF.
        redrawn = session.attach_karp_luby(20000, make_rng(12))
        assert redrawn.estimate() == pytest.approx(
            float(session.probability()), abs=0.02
        )
