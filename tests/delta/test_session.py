"""DeltaSession: incremental answers bit-identical to cold recomputes.

Every test compares the session's maintained :class:`Fraction` against
``truth_probability`` / ``reliability`` evaluated cold on the session's
current database — equality is exact (``==`` on Fractions), never
approximate.
"""

from fractions import Fraction

import pytest

from repro import obs
from repro.delta import DeltaSession
from repro.kernels import cache_persist
from repro.kernels.cache import clear_caches
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError

SELF_JOIN = "exists x y. E(x, y) & E(y, x)"


def _square_db():
    """A 4-node graph with two uncertain 2-cycles and a certain edge."""
    builder = StructureBuilder(range(4))
    builder.relation("E", 2)
    for pair in [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3)]:
        builder.add("E", pair)
    mu = {
        Atom("E", pair): Fraction(1, 8)
        for pair in [(0, 1), (1, 0), (1, 2), (2, 1)]
    }
    return UnreliableDatabase(builder.build(), mu)


def _assert_current(session, query):
    assert session.probability() == truth_probability(session.db, query)
    assert session.reliability() == reliability(session.db, query)


class TestAnswers:
    def test_initial_probability_matches_cold(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        _assert_current(session, SELF_JOIN)

    def test_weight_only_set_mu(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        session.set_mu(Atom("E", (0, 1)), Fraction(1, 3))
        _assert_current(session, SELF_JOIN)
        session.set_mu(Atom("E", (1, 0)), Fraction(7, 8))
        _assert_current(session, SELF_JOIN)

    def test_structural_set_mu_to_zero_and_back(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        atom = Atom("E", (0, 1))
        session.set_mu(atom, 0)  # becomes deterministic-present
        _assert_current(session, SELF_JOIN)
        session.set_mu(atom, Fraction(1, 4))  # uncertain again
        _assert_current(session, SELF_JOIN)

    def test_structural_set_mu_to_one(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        session.set_mu(Atom("E", (1, 2)), 1)  # certainly flipped
        _assert_current(session, SELF_JOIN)

    def test_insert_and_delete_uncertain_tuple(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        atom = Atom("E", (0, 1))
        session.delete(atom)  # nu flips from 1-mu to mu
        _assert_current(session, SELF_JOIN)
        session.insert(atom)
        _assert_current(session, SELF_JOIN)

    def test_insert_deterministic_tuple_is_structural(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        session.insert(Atom("E", (3, 2)))  # mu=0: a new certain 2-cycle
        _assert_current(session, SELF_JOIN)
        assert session.probability() == 1
        session.delete(Atom("E", (3, 2)))
        _assert_current(session, SELF_JOIN)

    def test_noop_updates_change_nothing(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        before = session.probability()
        session.set_mu(Atom("E", (0, 1)), Fraction(1, 8))  # same value
        session.insert(Atom("E", (0, 1)))  # already present
        assert session.probability() == before

    def test_update_of_unrelated_relation_atom(self):
        db = _square_db()
        session = DeltaSession(db, SELF_JOIN)
        # An atom whose relation appears in the query but whose tuple
        # cannot complete any clause.
        session.set_mu(Atom("E", (3, 3)), Fraction(1, 2))
        _assert_current(session, SELF_JOIN)

    def test_recompute_is_the_same_answer(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        session.set_mu(Atom("E", (0, 1)), Fraction(2, 5))
        incremental = session.probability()
        assert session.recompute() == incremental

    def test_universal_query_via_negation(self):
        query = "forall x y. E(x, y)"
        session = DeltaSession(_square_db(), query)
        _assert_current(session, query)
        session.set_mu(Atom("E", (0, 1)), Fraction(1, 2))
        _assert_current(session, query)
        session.delete(Atom("E", (2, 3)))
        _assert_current(session, query)

    def test_wrong_probability_tracks_observed_answer(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        # Observed structure satisfies the query: wrong = 1 - Pr.
        assert (
            session.wrong_probability() == 1 - session.probability()
        )
        assert session.reliability() == session.probability()


class TestValidation:
    def test_non_boolean_query_refused(self):
        with pytest.raises(QueryError):
            DeltaSession(_square_db(), "E(x, y)")

    def test_diagram_size_is_positive(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        assert session.diagram_size > 0


class TestCounters:
    def test_weight_only_path_never_recompiles(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            session.set_mu(Atom("E", (0, 1)), Fraction(1, 3))
            session.delete(Atom("E", (1, 2)))
        counters = recorder.summary()["counters"]
        assert counters["delta.updates"] == 2
        assert counters["delta.reweights"] == 2
        assert counters["delta.nodes_reevaluated"] > 0
        assert "delta.recompiles" not in counters
        assert "delta.regrounds" not in counters

    def test_structural_path_regrounds_and_recompiles(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            session.set_mu(Atom("E", (0, 1)), 0)
        counters = recorder.summary()["counters"]
        assert counters["delta.regrounds"] >= 1
        assert counters["delta.recompiles"] == 1

    def test_reweight_touches_fewer_nodes_than_the_diagram(self):
        session = DeltaSession(_square_db(), SELF_JOIN)
        # The deepest variable in the order re-evaluates the most
        # levels; any atom's bill is bounded by the diagram size.
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            session.set_mu(Atom("E", (2, 1)), Fraction(1, 3))
        touched = recorder.summary()["counters"]["delta.nodes_reevaluated"]
        assert 0 < touched <= session.diagram_size


class TestPersistRoundTrip:
    def test_warm_session_from_disk_is_bit_identical(self, tmp_path):
        cache_persist.configure(str(tmp_path / "c"))
        db = _square_db()
        cold = DeltaSession(db, SELF_JOIN)
        cold_value = cold.probability()
        cold_size = cold.diagram_size
        # New "process": empty memory tier, same disk tier.
        clear_caches()
        recorder = obs.StatsRecorder()
        with obs.use(recorder):
            warm = DeltaSession(db, SELF_JOIN)
        counters = recorder.summary()["counters"]
        assert counters.get("kernels.cache.persist.hits", 0) >= 1
        assert warm.probability() == cold_value
        assert warm.diagram_size == cold_size  # the same compiled plan
        # And the warm session updates correctly from the loaded plan.
        warm.set_mu(Atom("E", (0, 1)), Fraction(1, 3))
        _assert_current(warm, SELF_JOIN)
