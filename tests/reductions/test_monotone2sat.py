"""Tests for the Proposition 3.2 reduction (#MONOTONE-2SAT -> H_psi)."""

from fractions import Fraction

import pytest

from repro.logic.conjunctive import hardness_query
from repro.reductions.monotone2sat import (
    Monotone2CNF,
    count_satisfying_assignments,
    encode_monotone_2cnf,
    sat_count_via_expected_error,
)
from repro.reliability.exact import expected_error, truth_probability
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_cnf import random_monotone_2cnf


class TestMonotone2CNF:
    def test_variables_sorted_unique(self):
        formula = Monotone2CNF((("b", "a"), ("a", "c")))
        assert formula.variables == ("a", "b", "c")

    def test_satisfied_by(self):
        formula = Monotone2CNF((("a", "b"), ("b", "c")))
        assert formula.satisfied_by({"b"})
        assert formula.satisfied_by({"a", "c"})
        assert not formula.satisfied_by({"a"})
        assert not formula.satisfied_by(set())

    def test_non_binary_clause_rejected(self):
        with pytest.raises(QueryError):
            Monotone2CNF((("a",),))

    def test_count_bruteforce(self):
        # (a|b): 3 of 4 assignments satisfy.
        assert count_satisfying_assignments(Monotone2CNF((("a", "b"),))) == 3
        # (a|b) & (b|c): b=1 gives 4, b=0 needs a=c=1 gives 1 -> 5.
        assert (
            count_satisfying_assignments(Monotone2CNF((("a", "b"), ("b", "c"))))
            == 5
        )


class TestEncoding:
    def test_structure_shape(self):
        formula = Monotone2CNF((("a", "b"), ("b", "c")))
        db = encode_monotone_2cnf(formula)
        structure = db.structure
        assert len(structure) == 2 + 3  # clauses + variables
        assert len(structure.relation("L")) == 2
        assert len(structure.relation("R")) == 2
        assert len(structure.relation("S")) == 3  # all variables false

    def test_only_s_atoms_uncertain_at_half(self):
        formula = Monotone2CNF((("a", "b"),))
        db = encode_monotone_2cnf(formula)
        for atom in db.uncertain_atoms():
            assert atom.relation == "S"
            assert db.mu(atom) == Fraction(1, 2)
        assert len(db.uncertain_atoms()) == 2

    def test_within_de_rougemont_restricted_model(self):
        # The paper remarks the reduction only perturbs positive facts.
        formula = Monotone2CNF((("a", "b"), ("b", "c")))
        assert encode_monotone_2cnf(formula).is_positive_only()

    def test_observed_database_satisfies_query(self):
        formula = Monotone2CNF((("a", "b"),))
        db = encode_monotone_2cnf(formula)
        assert hardness_query().evaluate(db.structure, ())


class TestReductionIdentity:
    def test_expected_error_is_sat_fraction(self):
        formula = Monotone2CNF((("a", "b"), ("b", "c")))
        db = encode_monotone_2cnf(formula)
        h = expected_error(db, hardness_query().to_fo_query())
        assert h == Fraction(5, 8)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_formulas_roundtrip(self, seed):
        rng = make_rng(seed)
        formula = random_monotone_2cnf(rng, variables=5, clauses=4)
        assert sat_count_via_expected_error(formula) == (
            count_satisfying_assignments(formula)
        )

    @pytest.mark.parametrize("method", ["dnf", "worlds"])
    def test_engines_agree_on_reduction_instances(self, method):
        formula = Monotone2CNF((("a", "b"), ("c", "d"), ("a", "d")))
        assert sat_count_via_expected_error(formula, method=method) == (
            count_satisfying_assignments(formula)
        )

    def test_unsatisfiable_impossible_for_monotone(self):
        # Monotone formulas are always satisfied by the all-true
        # assignment, so the count is at least 1 — a sanity invariant.
        rng = make_rng(9)
        for _ in range(5):
            formula = random_monotone_2cnf(rng, variables=4, clauses=3)
            assert sat_count_via_expected_error(formula) >= 1
