"""Tests for the Lemma 5.9 reduction (4-colourability -> co-AR)."""

import pytest

from repro.reductions.fourcolouring import (
    encode_four_colouring,
    four_colourable_via_absolute_reliability,
    is_four_colourable,
    non_four_colouring_query,
)
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.graphs import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    random_colourable_graph,
)


class TestBruteforceColouring:
    def test_complete_graphs_sharp_threshold(self):
        for n in range(2, 5):
            nodes, edges = complete_graph(n)
            assert is_four_colourable(nodes, edges)
        nodes, edges = complete_graph(5)
        assert not is_four_colourable(nodes, edges)

    def test_self_loop_never_colourable(self):
        assert not is_four_colourable([1], [(1, 1)])

    def test_cycles(self):
        nodes, edges = cycle_graph(5)
        assert is_four_colourable(nodes, edges)
        assert not is_four_colourable(nodes, edges, colours=2)
        even_nodes, even_edges = cycle_graph(6)
        assert is_four_colourable(even_nodes, even_edges, colours=2)


class TestEncoding:
    def test_observed_satisfies_query(self):
        nodes, edges = cycle_graph(4)
        db = encode_four_colouring(nodes, edges)
        assert non_four_colouring_query().evaluate(db.structure, ())

    def test_edges_certain_colours_uniform(self):
        nodes, edges = cycle_graph(4)
        db = encode_four_colouring(nodes, edges)
        for atom in db.uncertain_atoms():
            assert atom.relation in ("R1", "R2")
        assert len(db.uncertain_atoms()) == 8

    def test_empty_graph_rejected(self):
        with pytest.raises(QueryError):
            encode_four_colouring([1, 2], [])


class TestReductionEquivalence:
    def test_k4_vs_k5(self):
        nodes, edges = complete_graph(4)
        assert four_colourable_via_absolute_reliability(nodes, edges)
        nodes, edges = complete_graph(5)
        assert not four_colourable_via_absolute_reliability(nodes, edges)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_agree_with_bruteforce(self, seed):
        rng = make_rng(seed)
        nodes, edges = gnp_graph(rng, nodes=6, probability=0.5)
        if not edges:
            pytest.skip("empty graph excluded by the paper's footnote")
        assert four_colourable_via_absolute_reliability(nodes, edges) == (
            is_four_colourable(nodes, edges)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_constructed_colourable_graphs(self, seed):
        rng = make_rng(50 + seed)
        nodes, edges = random_colourable_graph(
            rng, nodes=7, colours=4, probability=0.6
        )
        if not edges:
            pytest.skip("degenerate draw")
        assert is_four_colourable(nodes, edges)
        assert four_colourable_via_absolute_reliability(nodes, edges)

    @pytest.mark.parametrize("method", ["auto", "exact", "witness"])
    def test_ar_methods_agree_on_small_instance(self, method):
        nodes, edges = complete_graph(4)
        assert four_colourable_via_absolute_reliability(nodes, edges, method)
