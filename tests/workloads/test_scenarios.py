"""Tests for the realistic end-to-end scenarios."""

from fractions import Fraction

import pytest

from repro.reliability.exact import reliability
from repro.reliability.montecarlo import estimate_reliability_hamming
from repro.metafinite.reliability import metafinite_reliability_qf
from repro.util.rng import make_rng
from repro.workloads.scenarios import (
    dirty_orders_scenario,
    network_monitoring_scenario,
    sensor_scenario,
)


class TestNetworkMonitoring:
    def test_shape(self):
        scenario = network_monitoring_scenario(make_rng(0), routers=6)
        assert scenario.db.universe_size == 6
        assert set(scenario.queries) == {"redundant", "reach", "isolated"}
        # Every link atom is uncertain, both directions.
        assert len(scenario.db.uncertain_atoms()) == 6 * 5

    def test_queries_evaluate(self):
        scenario = network_monitoring_scenario(make_rng(1), routers=5)
        structure = scenario.db.structure
        for name, query in scenario.queries.items():
            answers = query.answers(structure)
            assert isinstance(answers, set), name

    def test_reliability_estimable(self):
        scenario = network_monitoring_scenario(make_rng(2), routers=5)
        rng = make_rng(3)
        value = estimate_reliability_hamming(
            scenario.db, scenario.queries["reach"], rng, samples=300
        )
        assert 0.0 <= value <= 1.0


class TestDirtyOrders:
    def test_shape(self):
        scenario = dirty_orders_scenario(make_rng(4), customers=4, products=3)
        db = scenario.db
        assert db.universe_size == 7
        mus = {db.mu(a) for a in db.uncertain_atoms()}
        assert mus == {Fraction(1, 8), Fraction(1, 50), Fraction(1, 10)}

    def test_qf_query_exact(self):
        scenario = dirty_orders_scenario(make_rng(5), customers=3, products=2)
        value = reliability(scenario.db, scenario.queries["pairs"], method="qf")
        assert 0 < value <= 1

    def test_conjunctive_query_exact_dnf(self):
        scenario = dirty_orders_scenario(make_rng(6), customers=3, products=2)
        value = reliability(scenario.db, scenario.queries["vip_order"])
        assert 0 < value <= 1


class TestSensors:
    def test_shape(self):
        scenario = sensor_scenario(make_rng(7), sensors=4)
        assert scenario.db.universe_size == 4
        assert len(scenario.db.uncertain_entries()) == 4

    def test_qf_query_polynomial_path(self):
        scenario = sensor_scenario(make_rng(8), sensors=5)
        value = metafinite_reliability_qf(scenario.db, scenario.queries["local"])
        assert 0 < value <= 1

    def test_aggregate_queries_evaluate(self):
        scenario = sensor_scenario(make_rng(9), sensors=4)
        observed = scenario.db.observed
        total = scenario.queries["total"].evaluate(observed, ())
        hottest = scenario.queries["hottest"].evaluate(observed, ())
        assert total >= hottest >= 15
