"""Tests for workload generators: determinism and advertised shapes."""

import pytest

from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import make_rng
from repro.workloads.graphs import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    random_colourable_graph,
    random_digraph,
)
from repro.workloads.random_cnf import random_monotone_2cnf
from repro.workloads.random_db import random_structure, random_unreliable_database
from repro.workloads.random_dnf import random_kdnf, random_probabilities


class TestDeterminism:
    def test_same_seed_same_structure(self):
        first = random_structure(make_rng(1), 5, {"E": 2}, 0.3)
        second = random_structure(make_rng(1), 5, {"E": 2}, 0.3)
        assert first == second

    def test_same_seed_same_graph(self):
        assert gnp_graph(make_rng(2), 10, 0.4) == gnp_graph(make_rng(2), 10, 0.4)

    def test_same_seed_same_cnf(self):
        assert random_monotone_2cnf(make_rng(3), 6, 5) == random_monotone_2cnf(
            make_rng(3), 6, 5
        )

    def test_same_seed_same_dnf(self):
        d1 = random_kdnf(make_rng(4), 8, 5, 3)
        d2 = random_kdnf(make_rng(4), 8, 5, 3)
        assert d1 == d2


class TestShapes:
    def test_random_structure_density_extremes(self):
        empty = random_structure(make_rng(0), 4, {"E": 2}, 0.0)
        assert not empty.relation("E")
        full = random_structure(make_rng(0), 4, {"E": 2}, 1.0)
        assert len(full.relation("E")) == 16

    def test_bad_density_rejected(self):
        with pytest.raises(ProbabilityError):
            random_structure(make_rng(0), 4, {"E": 2}, 1.5)

    def test_random_db_uncertain_fraction(self):
        db = random_unreliable_database(
            make_rng(5), 4, {"E": 2}, uncertain_fraction=0.0
        )
        assert db.uncertain_atoms() == ()
        db = random_unreliable_database(
            make_rng(5), 4, {"E": 2}, uncertain_fraction=1.0, error="1/9"
        )
        assert len(db.uncertain_atoms()) == 16

    def test_cycle_and_grid_shapes(self):
        nodes, edges = cycle_graph(5)
        assert len(edges) == 5
        grid_nodes, grid_edges = grid_graph(2, 3)
        assert len(grid_nodes) == 6
        assert len(grid_edges) == 2 * 2 + 3  # horizontal + vertical

    def test_complete_graph(self):
        nodes, edges = complete_graph(5)
        assert len(edges) == 10

    def test_random_digraph_no_self_loops(self):
        _nodes, edges = random_digraph(make_rng(6), 6, 0.5)
        assert all(u != v for u, v in edges)

    def test_colourable_construction_respects_classes(self):
        nodes, edges = random_colourable_graph(make_rng(7), 10, 3, 0.8)
        from repro.reductions.fourcolouring import is_four_colourable

        assert is_four_colourable(nodes, edges, colours=3)

    def test_cnf_clause_count_and_distinctness(self):
        formula = random_monotone_2cnf(make_rng(8), 6, 10)
        assert len(formula.clauses) == 10
        assert len(set(formula.clauses)) == 10

    def test_cnf_too_many_clauses_rejected(self):
        with pytest.raises(QueryError):
            random_monotone_2cnf(make_rng(9), 3, 10)

    def test_kdnf_width(self):
        dnf = random_kdnf(make_rng(10), 9, 6, 4)
        assert dnf.width <= 4
        assert all(len(c) == 4 for c in dnf.clauses)

    def test_kdnf_width_bounds(self):
        with pytest.raises(QueryError):
            random_kdnf(make_rng(11), 3, 2, 5)

    def test_probabilities_interior(self):
        dnf = random_kdnf(make_rng(12), 6, 4, 2)
        probs = random_probabilities(make_rng(12), dnf, denominator=8)
        for p in probs.values():
            assert 0 < p < 1
            assert p.denominator <= 8
