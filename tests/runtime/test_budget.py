"""Deadlines, budgets, slices and the active-budget machinery.

All timing tests drive an injectable fake clock — nothing here sleeps,
so the suite stays fast and deterministic.
"""

import pytest

from repro.runtime.budget import (
    DEFAULT_BUDGET,
    DEFAULT_MAX_ATOMS,
    Budget,
    Deadline,
    SlicedBudget,
    active_budget,
    apply,
    checkpoint,
    set_budget,
)
from repro.util.errors import BudgetExceeded, ResourceError


class FakeClock:
    """A monotonic clock tests advance by hand."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_requires_positive_seconds(self):
        with pytest.raises(ResourceError):
            Deadline(0)
        with pytest.raises(ResourceError):
            Deadline(-1.5)

    def test_counts_down_on_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock).start()
        clock.advance(4.0)
        assert deadline.elapsed() == pytest.approx(4.0)
        assert deadline.remaining() == pytest.approx(6.0)
        assert not deadline.expired()

    def test_check_raises_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock).start()
        deadline.check()  # in budget: fine
        clock.advance(2.5)
        assert deadline.expired()
        with pytest.raises(BudgetExceeded, match="deadline of 2s exceeded"):
            deadline.check()

    def test_starts_lazily_on_first_query(self):
        clock = FakeClock(100.0)
        deadline = Deadline(5.0, clock)
        clock.advance(50.0)  # before any query: no countdown yet
        assert deadline.remaining() == pytest.approx(5.0)

    def test_restart_resets_countdown(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock).start()
        clock.advance(0.9)
        deadline.start()
        clock.advance(0.9)
        deadline.check()  # 0.9 < 1.0 since restart


class TestBudget:
    def test_caps_must_be_positive(self):
        for kwargs in (
            {"deadline": 0},
            {"max_worlds": 0},
            {"max_ground_clauses": -3},
            {"max_samples": 0},
            {"max_atoms": -1},
        ):
            with pytest.raises(ResourceError):
                Budget(**kwargs)

    def test_world_cap_enforced(self):
        budget = Budget(max_worlds=3)
        budget.consume(worlds=3)
        with pytest.raises(BudgetExceeded, match="world budget exhausted"):
            budget.consume(worlds=1)

    def test_sample_cap_enforced(self):
        budget = Budget(max_samples=2)
        budget.consume(samples=2)
        with pytest.raises(BudgetExceeded, match="sample budget exhausted"):
            budget.consume(samples=1)

    def test_clause_cap_enforced(self):
        budget = Budget(max_ground_clauses=5)
        budget.consume(clauses=5)
        with pytest.raises(BudgetExceeded, match="grounding budget"):
            budget.consume(clauses=1)

    def test_deadline_checked_at_consume(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock).start()
        budget.consume(worlds=1)
        clock.advance(1.5)
        with pytest.raises(BudgetExceeded):
            budget.consume()

    def test_uncapped_budget_consumes_freely(self):
        budget = Budget(max_atoms=None)
        budget.consume(worlds=10**9, samples=10**9, clauses=10**9)
        assert budget.world_limit() is None
        assert budget.remaining_samples() is None
        assert budget.remaining_time() is None

    def test_default_budget_has_preflight_guard_only(self):
        assert DEFAULT_BUDGET.world_limit() == 1 << DEFAULT_MAX_ATOMS
        # ...but no running caps: the hot-loop fast path stays on.
        assert not DEFAULT_BUDGET._limited

    def test_world_limit_prefers_explicit_max_worlds(self):
        assert Budget(max_worlds=7, max_atoms=30).world_limit() == 7
        assert Budget(max_atoms=4).world_limit() == 16

    def test_remaining_samples_counts_down(self):
        budget = Budget(max_samples=10)
        budget.consume(samples=4)
        assert budget.remaining_samples() == 6

    def test_reset_zeroes_counters(self):
        budget = Budget(max_worlds=2)
        budget.consume(worlds=2)
        budget.reset()
        budget.consume(worlds=2)  # fresh allowance

    def test_repr_mentions_caps(self):
        assert "max_worlds=5" in repr(Budget(max_worlds=5))


class TestSlicedBudget:
    def test_slice_expires_before_parent(self):
        clock = FakeClock()
        parent = Budget(deadline=10.0, clock=clock).start()
        piece = parent.sliced(2.0).start()
        clock.advance(3.0)
        parent.consume()  # parent has 7s left
        with pytest.raises(BudgetExceeded):
            piece.consume()

    def test_slice_charges_parent_counters(self):
        parent = Budget(max_samples=5)
        piece = parent.sliced(60.0).start()
        piece.consume(samples=3)
        assert parent.samples == 3
        with pytest.raises(BudgetExceeded):
            piece.consume(samples=3)

    def test_remaining_time_is_min_of_slice_and_parent(self):
        clock = FakeClock()
        parent = Budget(deadline=1.0, clock=clock).start()
        piece = parent.sliced(5.0).start()
        assert piece.remaining_time() == pytest.approx(1.0)

    def test_caps_delegate(self):
        parent = Budget(max_worlds=9, max_atoms=12)
        piece = parent.sliced(1.0)
        assert piece.max_worlds == 9
        assert piece.world_limit() == 9
        assert isinstance(piece, SlicedBudget)

    def test_slices_nest(self):
        clock = FakeClock()
        parent = Budget(deadline=10.0, clock=clock).start()
        inner = parent.sliced(4.0).start().sliced(1.0).start()
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded):
            inner.consume()


class TestActiveBudget:
    def test_apply_scopes_and_restores(self):
        budget = Budget(max_samples=1)
        before = active_budget()
        with apply(budget) as installed:
            assert installed is budget
            assert active_budget() is budget
        assert active_budget() is before

    def test_apply_restores_on_error(self):
        before = active_budget()
        with pytest.raises(RuntimeError):
            with apply(Budget(max_samples=1)):
                raise RuntimeError("boom")
        assert active_budget() is before

    def test_checkpoint_hits_active_budget(self):
        with apply(Budget(max_samples=2)):
            checkpoint(samples=2)
            with pytest.raises(BudgetExceeded):
                checkpoint(samples=1)

    def test_checkpoint_noop_under_default(self):
        checkpoint(worlds=10**12)  # default budget: nothing raises
        assert active_budget() is DEFAULT_BUDGET

    def test_set_budget_none_restores_default(self):
        previous = set_budget(Budget(max_samples=1))
        try:
            assert active_budget() is not DEFAULT_BUDGET
            set_budget(None)
            assert active_budget() is DEFAULT_BUDGET
        finally:
            set_budget(previous)
