"""Statistical conformance of the adaptive sequential stopper.

The empirical-Bernstein controller (:mod:`repro.runtime.adaptive`)
claims the *same* (epsilon, delta) contract as the fixed worst-case
budget it replaces.  That claim is statistical, so it is tested the
only honest way: a large pinned seed window, the empirical coverage of
the guarantee measured over the whole window, and a ``>= 1 - delta``
assertion on the aggregate — per-seed "within epsilon" assertions
would be unsound (any single seed is *allowed* to miss with
probability up to delta).

Two estimator paths are swept:

* additive — :func:`estimate_truth_probability` with ``adaptive=True``
  against the exact truth probability of a small database;
* relative — :func:`karp_luby` with ``adaptive=True`` against the
  exact DNF probability.

``ADAPTIVE_CONF_SEEDS`` (environment) replays an explicit seed window —
the CI ``adaptive-guarantee`` lane pins a fixed window while letting
developers widen the sweep locally, mirroring ``SAFETY_DIFF_SEEDS``.
"""

import os
from functools import lru_cache

import pytest

from repro import obs
from repro.logic.evaluator import FOQuery
from repro.propositional.counting import probability_exact
from repro.propositional.karp_luby import karp_luby, sample_count
from repro.reliability.exact import truth_probability
from repro.reliability.montecarlo import (
    estimate_truth_probability,
    hoeffding_samples,
)
from repro.runtime.adaptive import CostSurrogate, use_surrogate
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database
from repro.workloads.random_dnf import random_kdnf, random_probabilities

# Additive arm: a small Boolean query whose truth probability is exact.
MC_EPSILON = 0.1
MC_DELTA = 0.2
# Relative arm: a 4-clause DNF keeps the Karp-Luby worst case ~1k.
KL_EPSILON = 0.2
KL_DELTA = 0.2


def _seeds():
    raw = os.environ.get("ADAPTIVE_CONF_SEEDS", "")
    if raw.strip():
        return [int(token) for token in raw.replace(",", " ").split()]
    # >= 200 seeds per ISSUE acceptance; 240 leaves headroom.
    return list(range(240))


@lru_cache(maxsize=1)
def _mc_instance():
    query = FOQuery("exists x. exists y. E(x, y) & S(y)")
    db = random_unreliable_database(
        make_rng(41), size=4, relations={"E": 2, "S": 1},
        density=0.4, error="1/8",
    )
    exact = float(truth_probability(db, query, method="dnf"))
    return db, query, exact


@lru_cache(maxsize=1)
def _kl_instance():
    rng = make_rng(5)
    dnf = random_kdnf(rng, variables=8, clauses=4, width=3)
    probs = random_probabilities(rng, dnf)
    exact = float(probability_exact(dnf, probs))
    assert exact > 0.0
    return dnf, probs, exact


_MC_RESULTS = {}
_KL_RESULTS = {}


def _mc_estimate(seed):
    if seed not in _MC_RESULTS:
        db, query, _ = _mc_instance()
        with use_surrogate(CostSurrogate()):
            _MC_RESULTS[seed] = estimate_truth_probability(
                db, query, make_rng(seed), MC_EPSILON, MC_DELTA,
                adaptive=True,
            )
    return _MC_RESULTS[seed]


def _kl_estimate(seed):
    if seed not in _KL_RESULTS:
        dnf, probs, _ = _kl_instance()
        with use_surrogate(CostSurrogate()):
            _KL_RESULTS[seed] = karp_luby(
                dnf, probs, KL_EPSILON, KL_DELTA, make_rng(seed),
                method="coverage", adaptive=True,
            )
    return _KL_RESULTS[seed]


@pytest.mark.parametrize("seed", _seeds())
def test_additive_estimate_is_sane(seed):
    """Per-seed soundness: a probability, replayable bit-identically."""
    value = _mc_estimate(seed)
    assert 0.0 <= value <= 1.0
    if seed % 32 == 0:  # determinism spot-check, kept cheap
        db, query, _ = _mc_instance()
        with use_surrogate(CostSurrogate()):
            again = estimate_truth_probability(
                db, query, make_rng(seed), MC_EPSILON, MC_DELTA,
                adaptive=True,
            )
        assert again == value


@pytest.mark.parametrize("seed", _seeds())
def test_relative_estimate_is_sane(seed):
    """Per-seed soundness: never draws more than the worst case."""
    dnf, _, _ = _kl_instance()
    run = _kl_estimate(seed)
    worst = sample_count(len(dnf.clauses), KL_EPSILON, KL_DELTA)
    assert 0.0 <= run.estimate <= 1.0
    assert 0 < run.samples <= worst


def test_additive_empirical_coverage():
    """P(|estimate - exact| <= epsilon) >= 1 - delta over the window."""
    _, _, exact = _mc_instance()
    seeds = _seeds()
    covered = sum(
        abs(_mc_estimate(seed) - exact) <= MC_EPSILON for seed in seeds
    )
    coverage = covered / len(seeds)
    assert coverage >= 1.0 - MC_DELTA, (covered, len(seeds))


def test_relative_empirical_coverage():
    """P(|estimate - exact| <= epsilon * exact) >= 1 - delta."""
    _, _, exact = _kl_instance()
    seeds = _seeds()
    covered = sum(
        abs(_kl_estimate(seed).estimate - exact) <= KL_EPSILON * exact
        for seed in seeds
    )
    coverage = covered / len(seeds)
    assert coverage >= 1.0 - KL_DELTA, (covered, len(seeds))


def test_adaptive_saves_samples_on_the_window():
    """The stopper actually stops: the window saves a real fraction."""
    dnf, _, _ = _kl_instance()
    worst = sample_count(len(dnf.clauses), KL_EPSILON, KL_DELTA)
    seeds = _seeds()
    drawn = sum(_kl_estimate(seed).samples for seed in seeds)
    assert drawn < worst * len(seeds)


def test_adaptive_path_actually_engages():
    """The adaptive counters move — the run is not silently fixed-budget."""
    db, query, _ = _mc_instance()
    with use_surrogate(CostSurrogate()) as surrogate:
        with obs.recording() as rec:
            estimate_truth_probability(
                db, query, make_rng(0), MC_EPSILON, MC_DELTA, adaptive=True,
            )
        counters = rec.summary()["counters"]
        assert counters["adaptive.runs"] == 1
        worst = hoeffding_samples(MC_EPSILON, MC_DELTA)
        assert (
            counters["adaptive.samples_drawn"]
            + counters["adaptive.samples_saved"]
            == worst
        )
        # ... and the completed run fed the online cost surrogate.
        assert surrogate.observations("montecarlo") == 1
