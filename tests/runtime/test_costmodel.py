"""Cost-model unit tests: features, fitting, persistence, fallback.

The regression class pins the satellite contract: a stale, corrupt, or
partial calibration file degrades to closed-form predictions with a
``costmodel.fallback`` counter — it never crashes ``run`` or
``analyze``.
"""

import json
import math
import random

import pytest

from repro import obs
from repro.logic.evaluator import FOQuery
from repro.obs.recorder import StatsRecorder
from repro.obs.sink import ListSink
from repro.reliability.report import analyze
from repro.runtime import costmodel
from repro.runtime.budget import Budget
from repro.runtime.costmodel import (
    CALIBRATION_VERSION,
    FEATURE_NAMES,
    CostModel,
    CostObservation,
    EngineCalibration,
    engine_guarantee,
    fit,
    fit_from_trace,
    load_calibration,
    load_or_fallback,
    plan_chain,
    plan_features,
    static_cost,
)
from repro.runtime.executor import DEFAULT_CHAIN, run_with_fallback
from repro.util.errors import CalibrationError
from repro.workloads.random_db import random_unreliable_database

EXISTENTIAL = "exists x. exists y. E(x, y) & S(y)"


def small_db(seed=7, size=4):
    return random_unreliable_database(
        random.Random(seed), size=size, relations={"E": 2, "S": 1}, density=0.4
    )


def fitted_model(scale=1.0):
    """A deterministic synthetic fit: engine i costs scale * i seconds."""
    observations = []
    base = {name: 1.0 for name in FEATURE_NAMES}
    for rank, engine in enumerate(DEFAULT_CHAIN, start=1):
        for jitter in (0.9, 1.0, 1.1, 1.2):
            features = dict(base, atoms=jitter * 3)
            observations.append(
                CostObservation(engine, scale * rank * jitter, features)
            )
    return fit(observations)


class TestPlanFeatures:
    def test_features_are_finite_floats(self):
        db = small_db()
        features = plan_features(db, FOQuery(EXISTENTIAL))
        assert set(features) == set(FEATURE_NAMES)
        for value in features.values():
            assert isinstance(value, float) and math.isfinite(value)

    def test_nonexistential_query_gets_zero_clauses(self):
        db = small_db()
        features = plan_features(db, FOQuery("forall x. exists y. E(x, y)"))
        # forall-exists prefix: outside the Theorem 5.4 grounding fragment.
        assert features["clauses"] == 0.0

    def test_kary_query_prices_cells(self):
        db = small_db(size=5)
        features = plan_features(db, FOQuery("exists y. E(x, y)", ["x"]))
        assert features["cells"] == 5.0

    def test_features_never_raise_on_opaque_queries(self):
        db = small_db()

        class Opaque:
            arity = 0

            def evaluate(self, structure, args):
                return True

            def answers(self, structure):
                return {()}

        features = plan_features(db, Opaque())
        assert features["clauses"] == 0.0


class TestGuaranteeTiers:
    def test_karp_luby_tier_depends_on_quantity(self):
        assert engine_guarantee("karp_luby", "probability") == "relative"
        assert engine_guarantee("karp_luby", "reliability") == "additive"

    def test_exact_engines_share_the_exact_tier(self):
        assert engine_guarantee("exact") == "exact"
        assert engine_guarantee("lifted") == "exact"
        assert engine_guarantee("montecarlo") == "additive"


class TestFit:
    def test_fit_orders_engines_by_observed_cost(self):
        model = fitted_model()
        features = {name: 1.0 for name in FEATURE_NAMES}
        predictions = [
            model.predict_seconds(engine, features) for engine in DEFAULT_CHAIN
        ]
        assert predictions == sorted(predictions)

    def test_underobserved_engine_stays_uncalibrated(self):
        features = {name: 1.0 for name in FEATURE_NAMES}
        model = fit([CostObservation("exact", 0.5, features)])
        assert not model.calibrated("exact")
        # Closed-form fallback still predicts something sortable.
        assert math.isfinite(model.predict_seconds("exact", features))

    def test_fit_from_trace_uses_only_ok_attempts(self):
        features = {name: 2.0 for name in FEATURE_NAMES}
        records = []
        for seconds in (0.1, 0.2, 0.3, 0.4):
            records.append(
                {
                    "type": "event",
                    "name": "runtime.attempt.cost",
                    "fields": dict(
                        features, engine="montecarlo", outcome="ok",
                        seconds=seconds,
                    ),
                }
            )
        # Refused attempts must not train the model.
        for _ in range(10):
            records.append(
                {
                    "type": "event",
                    "name": "runtime.attempt.cost",
                    "fields": dict(
                        features, engine="exact", outcome="cost_refused",
                        seconds=1e-6,
                    ),
                }
            )
        model = fit_from_trace(records)
        assert model.calibrated("montecarlo")
        assert not model.calibrated("exact")

    def test_executor_emits_trainable_cost_events(self):
        db = small_db()
        sink = ListSink()
        with obs.use(StatsRecorder(sink=sink)):
            run_with_fallback(db, EXISTENTIAL, rng=3)
        events = sink.by_name("runtime.attempt.cost")
        assert events, "executor should trace attempt costs when recording"
        fields = events[-1]["fields"]
        assert fields["outcome"] == "ok"
        assert set(FEATURE_NAMES) <= set(fields)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        model = fitted_model()
        path = tmp_path / "calibration.json"
        model.save(path)
        loaded = load_calibration(path)
        assert set(loaded.engines) == set(model.engines)
        features = {name: 3.0 for name in FEATURE_NAMES}
        for engine in model.engines:
            assert loaded.predict_seconds(engine, features) == pytest.approx(
                model.predict_seconds(engine, features)
            )

    def test_missing_file_raises_calibration_error(self, tmp_path):
        with pytest.raises(CalibrationError):
            load_calibration(tmp_path / "absent.json")

    def test_stale_version_raises_calibration_error(self, tmp_path):
        path = tmp_path / "stale.json"
        payload = fitted_model().to_payload()
        payload["version"] = CALIBRATION_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationError, match="stale"):
            load_calibration(path)


class TestCalibrationFallback:
    """Satellite: corrupt calibration degrades, counts, never crashes."""

    def _counter(self, recorder, name):
        return recorder.summary().get("counters", {}).get(name, 0)

    def test_corrupt_json_falls_back_and_counts(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json at all")
        with obs.use(StatsRecorder()) as recorder:
            model = load_or_fallback(path)
        assert model.engines == {}
        assert self._counter(recorder, "costmodel.fallback") == 1

    def test_partial_file_keeps_valid_engines(self, tmp_path):
        payload = fitted_model().to_payload()
        payload["engines"]["exact"]["weights"] = ["oops"]
        payload["engines"]["safe_lifted"]["weights"] = [float("nan")] * (
            len(FEATURE_NAMES) + 1
        )
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(payload))
        with obs.use(StatsRecorder()) as recorder:
            model = load_or_fallback(path)
        assert not model.calibrated("exact")
        assert not model.calibrated("safe_lifted")
        assert model.calibrated("karp_luby")
        assert model.calibrated("montecarlo")
        assert self._counter(recorder, "costmodel.fallback") == 2

    @pytest.mark.parametrize(
        "content",
        ["", "[1, 2, 3]", '{"version": 999}', '{"version": 1, "engines": 3}'],
    )
    def test_run_and_analyze_never_crash_on_bad_calibration(
        self, tmp_path, content
    ):
        path = tmp_path / "bad.json"
        path.write_text(content)
        db = small_db()
        result = run_with_fallback(db, EXISTENTIAL, rng=1, cost_model=path)
        assert 0.0 <= result.value <= 1.0
        report = analyze(db, FOQuery(EXISTENTIAL), cost_model=path)
        assert report.recommended_engine == result.engine

    def test_bad_calibration_preserves_guarantee_tiers(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("corrupt")
        db = random_unreliable_database(
            random.Random(0),
            size=6,
            relations={"E": 2, "S": 1},
            density=0.8,
        )
        assert len(db.uncertain_atoms()) > 20  # exact must be refused
        result = run_with_fallback(db, EXISTENTIAL, rng=1, cost_model=path)
        # The cold model predicts from the closed forms, which may swap
        # engines *within* a tier (lifted's polynomial beats exact's
        # 2^atoms) but never across tiers: every exact-tier attempt must
        # precede every approximate attempt.
        tiers = [
            engine_guarantee(a.engine, "reliability") for a in result.attempts
        ]
        first_approx = next(
            (i for i, tier in enumerate(tiers) if tier != "exact"), len(tiers)
        )
        assert all(tier == "exact" for tier in tiers[:first_approx])
        assert all(tier != "exact" for tier in tiers[first_approx:])


class TestOrderChain:
    def test_no_model_means_no_reordering(self):
        db = small_db()
        sink = ListSink()
        with obs.use(StatsRecorder(sink=sink)):
            result = run_with_fallback(db, EXISTENTIAL, rng=2)
        assert tuple(a.engine for a in result.attempts)[0] == "safe_lifted"

    def test_order_chain_respects_tiers_with_adversarial_weights(self):
        width = len(FEATURE_NAMES) + 1
        engines = {
            "exact": EngineCalibration((float("inf"),) * width, 9, 0.0),
            "montecarlo": EngineCalibration((-1e300,) * width, 9, 0.0),
        }
        model = CostModel(engines)
        features = {name: 1.0 for name in FEATURE_NAMES}
        ordered = model.order_chain(DEFAULT_CHAIN, features, "reliability")
        tiers = [engine_guarantee(name, "reliability") for name in ordered]
        assert tiers == ["exact", "exact", "additive", "additive"]
        assert sorted(ordered) == sorted(DEFAULT_CHAIN)

    def test_calibrated_model_reorders_within_additive_tier(self):
        # montecarlo observed much cheaper than karp_luby: it must move
        # ahead of karp_luby, but never ahead of the exact tier.
        observations = []
        features = {name: 1.0 for name in FEATURE_NAMES}
        for seconds, engine in ((0.001, "montecarlo"), (1.0, "karp_luby")):
            for jitter in (0.9, 1.0, 1.1):
                observations.append(
                    CostObservation(engine, seconds * jitter, features)
                )
        model = fit(observations)
        ordered = model.order_chain(DEFAULT_CHAIN, features, "reliability")
        assert ordered == ("safe_lifted", "exact", "montecarlo", "karp_luby")
        # On probabilities Karp-Luby is *relative*: a stronger tier than
        # montecarlo's additive, so the swap is forbidden.
        ordered = model.order_chain(DEFAULT_CHAIN, features, "probability")
        assert ordered == DEFAULT_CHAIN

    def test_executor_uses_calibrated_order(self):
        db = small_db()
        model = fitted_model()
        # Make lifted far cheaper than exact within the exact tier.
        features = plan_features(db, FOQuery(EXISTENTIAL))
        ordered = model.order_chain(DEFAULT_CHAIN, features, "reliability")
        result = run_with_fallback(db, EXISTENTIAL, rng=5, cost_model=model)
        assert tuple(a.engine for a in result.attempts) == ordered[: len(
            result.attempts
        )]


class TestPlanChain:
    def test_plan_matches_run_on_default_budget(self):
        db = small_db()
        plan = plan_chain(db, FOQuery(EXISTENTIAL))
        result = run_with_fallback(db, EXISTENTIAL, rng=0)
        assert plan.selected == result.engine

    def test_plan_does_not_consume_the_budget(self):
        db = small_db()
        budget = Budget(max_samples=10**7)
        plan_chain(db, FOQuery(EXISTENTIAL), budget=budget)
        assert budget.samples == 0
        assert budget.ground_clauses == 0

    def test_plan_reports_not_tried_tail(self):
        db = small_db()
        plan = plan_chain(db, FOQuery(EXISTENTIAL))
        outcomes = [forecast.outcome for forecast in plan.forecasts]
        assert "ok" in outcomes
        selected_at = outcomes.index("ok")
        assert all(o == "not_tried" for o in outcomes[selected_at + 1 :])
        assert "exact" in plan.describe()

    def test_static_cost_covers_every_engine(self):
        features = {name: 2.0 for name in FEATURE_NAMES}
        for engine in DEFAULT_CHAIN:
            cost = static_cost(engine, features)
            assert math.isfinite(cost) and cost > 0


class TestCalibrate:
    def test_calibrate_produces_a_usable_model(self):
        model = costmodel.calibrate(seed=11, repeats=1)
        assert model.engines, "seeded workload should calibrate engines"
        db = small_db()
        features = plan_features(db, FOQuery(EXISTENTIAL))
        for engine in model.engines:
            predicted = model.predict_seconds(engine, features)
            assert math.isfinite(predicted) and predicted > 0
