"""Cross-engine differential harness (the headline deliverable).

Fuzzes seeded random databases, queries, budgets, accuracy targets, and
cost models, then asserts three contracts:

(a) **analyze/run agreement** — the engine :func:`plan_chain` forecasts
    (the one ``repro analyze`` prints) is exactly the engine
    :func:`run_with_fallback` selects under the same inputs, and a
    forecast of "nothing runs" coincides with :class:`FallbackExhausted`.
(b) **tier safety** — calibrated ordering permutes engines only within
    guarantee tiers; every exact-tier attempt precedes every approximate
    attempt, under every model including adversarial ones.
(c) **oracle agreement** — whichever engine answers agrees with the
    unbudgeted exact oracle within its advertised guarantee (exactly,
    relatively, or additively), and so does each engine forced solo.
(d) **race agreement** — ``plan_chain(..., race=...)`` simulates the
    speculative race, and when each engine really does take its
    predicted time (a scripted ``SlowdownFault`` on the virtual clock),
    the real race reproduces the forecast winner and the per-engine
    outcome map exactly.

Budgets are restricted to ``max_atoms``/``max_samples`` caps — the
combinations :func:`plan_chain` simulates exactly (deadlines are racy
by nature and documented as best-effort).
"""

import math
import random

import pytest

from repro.logic.evaluator import FOQuery
from repro.reliability.exact import reliability, truth_probability
from repro.runtime.budget import Budget
from repro.runtime.costmodel import (
    FEATURE_NAMES,
    CostModel,
    CostObservation,
    EngineCalibration,
    engine_guarantee,
    fit,
    plan_chain,
)
from repro.runtime.executor import DEFAULT_CHAIN, run_with_fallback
from repro.util.errors import FallbackExhausted
from repro.workloads.random_db import random_unreliable_database

# (text, free variables, allow-probability) — spans the safe-plan
# fragment, unsafe CQs, non-CQ connectives, universal sentences, k-ary
# queries, and quantifier-free formulas.
QUERY_POOL = [
    ("exists x. S(x)", [], True),
    ("exists x. exists y. E(x, y)", [], True),
    ("exists x. exists y. E(x, y) & S(y)", [], True),
    ("exists x. exists y. E(x, y) & S(x) & S(y)", [], True),
    ("exists x. S(x) | (exists y. E(y, y))", [], True),
    ("forall x. exists y. E(x, y)", [], True),
    ("exists y. E(x, y)", ["x"], False),
    ("S(x) & ~S(y)", ["x", "y"], False),
]

CASE_COUNT = 220


def _synthetic_model(rng):
    """A plausibly-fitted model with randomized per-engine scales."""
    observations = []
    features = {name: 1.0 for name in FEATURE_NAMES}
    for engine in DEFAULT_CHAIN:
        scale = rng.uniform(1e-4, 1e-1)
        for jitter in (0.8, 1.0, 1.25):
            observations.append(
                CostObservation(engine, scale * jitter, dict(features))
            )
    return fit(observations)


def _adversarial_model(rng):
    """Hand-built calibrations with hostile weights (inf/NaN/huge)."""
    width = len(FEATURE_NAMES) + 1
    hostile = [float("inf"), float("-inf"), float("nan"), 1e300, -1e300, 0.0]
    engines = {}
    for engine in DEFAULT_CHAIN:
        if rng.random() < 0.7:
            weights = tuple(rng.choice(hostile) for _ in range(width))
            engines[engine] = EngineCalibration(weights, 5, 0.0)
    return CostModel(engines, source="adversarial")


def _make_case(index):
    rng = random.Random(1000 + index)
    size = rng.randint(3, 4)
    density = rng.uniform(0.2, 0.5)
    db = random_unreliable_database(
        rng, size=size, relations={"E": 2, "S": 1}, density=density
    )
    text, free, allows_probability = QUERY_POOL[index % len(QUERY_POOL)]
    query = FOQuery(text, free)
    quantity = (
        "probability"
        if allows_probability and rng.random() < 0.3
        else "reliability"
    )
    epsilon = rng.choice([0.2, 0.3, 0.4])
    delta = rng.choice([0.2, 0.3])
    budget_kind = rng.choice(["none", "atoms", "samples", "both", "starved"])
    if budget_kind == "none":
        budget = None
    elif budget_kind == "atoms":
        budget = Budget(max_atoms=rng.randint(4, 14))
    elif budget_kind == "samples":
        budget = Budget(max_samples=rng.randint(2_000, 60_000))
    elif budget_kind == "both":
        budget = Budget(
            max_atoms=rng.randint(4, 12),
            max_samples=rng.randint(2_000, 60_000),
        )
    else:  # starved: likely nothing can run except (maybe) lifted
        budget = Budget(max_atoms=rng.randint(1, 2), max_samples=rng.randint(1, 5))
    model_kind = rng.choice(["none", "cold", "fitted", "adversarial"])
    if model_kind == "none":
        model = None
    elif model_kind == "cold":
        model = CostModel()
    elif model_kind == "fitted":
        model = _synthetic_model(rng)
    else:
        model = _adversarial_model(rng)
    return dict(
        db=db,
        query=query,
        quantity=quantity,
        epsilon=epsilon,
        delta=delta,
        budget=budget,
        model=model,
        seed=index,
        kind=f"{budget_kind}/{model_kind}",
    )


def _oracle(db, query, quantity):
    if quantity == "probability":
        return float(truth_probability(db, query))
    return float(reliability(db, query))


def _check_guarantee(value, oracle, guarantee, epsilon):
    """Advertised-accuracy check; slack 3x absorbs the delta tail."""
    if guarantee == "exact":
        assert value == pytest.approx(oracle, abs=1e-9)
    elif guarantee == "relative":
        assert abs(value - oracle) <= 3.0 * epsilon * oracle + 1e-9
    else:
        assert guarantee == "additive"
        assert abs(value - oracle) <= 3.0 * epsilon + 1e-9


@pytest.mark.parametrize("index", range(CASE_COUNT))
def test_analyze_agrees_with_run(index):
    case = _make_case(index)
    plan = plan_chain(
        case["db"],
        case["query"],
        budget=case["budget"],
        quantity=case["quantity"],
        epsilon=case["epsilon"],
        delta=case["delta"],
        cost_model=case["model"],
    )
    try:
        result = run_with_fallback(
            case["db"],
            case["query"],
            budget=case["budget"],
            quantity=case["quantity"],
            epsilon=case["epsilon"],
            delta=case["delta"],
            rng=case["seed"],
            cost_model=case["model"],
        )
    except FallbackExhausted as exc:
        # (a) exhaustion must have been forecast, with matching outcomes.
        assert plan.selected is None, (
            f"[{case['kind']}] run exhausted but analyze forecast "
            f"{plan.selected!r}"
        )
        assert [a.engine for a in exc.attempts] == [
            f.engine for f in plan.forecasts
        ]
        assert [a.outcome for a in exc.attempts] == [
            f.outcome for f in plan.forecasts
        ]
        return

    # (a) the recommendation is the engine that actually answered.
    assert plan.selected == result.engine, (
        f"[{case['kind']}] analyze recommended {plan.selected!r} but run "
        f"selected {result.engine!r}"
    )
    # ... and the whole attempt walk matches the forecast, step by step.
    tried = [f for f in plan.forecasts if f.outcome != "not_tried"]
    assert [a.engine for a in result.attempts] == [f.engine for f in tried]
    assert [a.outcome for a in result.attempts] == [f.outcome for f in tried]

    # (b) tier safety of the executed order.
    ranks = [
        {"exact": 0, "relative": 1, "additive": 2}[
            engine_guarantee(a.engine, case["quantity"])
        ]
        for a in result.attempts
    ]
    assert ranks == sorted(ranks), (
        f"[{case['kind']}] attempts crossed guarantee tiers: "
        f"{[a.engine for a in result.attempts]}"
    )
    # The planned chain is always a permutation of the default chain.
    assert sorted(plan.chain) == sorted(DEFAULT_CHAIN)

    # (c) the answer honors the selected engine's advertised guarantee.
    oracle = _oracle(case["db"], case["query"], case["quantity"])
    _check_guarantee(
        result.value, oracle, result.guarantee, case["epsilon"]
    )
    assert result.guarantee == engine_guarantee(
        result.engine, case["quantity"]
    )


@pytest.mark.parametrize("engine", DEFAULT_CHAIN)
@pytest.mark.parametrize("index", range(0, CASE_COUNT, 10))
def test_each_engine_agrees_with_oracle_solo(engine, index):
    """(c) strengthened: force every engine alone against the oracle."""
    case = _make_case(index)
    try:
        result = run_with_fallback(
            case["db"],
            case["query"],
            chain=(engine,),
            budget=case["budget"],
            quantity=case["quantity"],
            epsilon=case["epsilon"],
            delta=case["delta"],
            rng=case["seed"],
            cost_model=case["model"],
        )
    except FallbackExhausted:
        return  # engine refused (fragment or cost) — nothing to compare
    oracle = _oracle(case["db"], case["query"], case["quantity"])
    _check_guarantee(result.value, oracle, result.guarantee, case["epsilon"])


def test_fuzz_covers_every_engine_and_exhaustion():
    """The case generator actually exercises the space it claims to."""
    selected = set()
    exhausted = 0
    kinds = set()
    for index in range(CASE_COUNT):
        case = _make_case(index)
        kinds.add(case["kind"])
        plan = plan_chain(
            case["db"],
            case["query"],
            budget=case["budget"],
            quantity=case["quantity"],
            epsilon=case["epsilon"],
            delta=case["delta"],
            cost_model=case["model"],
        )
        if plan.selected is None:
            exhausted += 1
        else:
            selected.add(plan.selected)
    assert selected == set(DEFAULT_CHAIN)
    assert exhausted >= 5
    assert len(kinds) >= 12  # budget x model grid is genuinely mixed


RACE_CASE_COUNT = 200
RACE_OVERLAPS = [0.0, 0.25, 0.5, 1.0]


def _race_case(index):
    """A fuzz case whose race forecast is replayable as slowdowns.

    Adversarial models predict inf/NaN seconds, which cannot be
    scripted as a finite ``SlowdownFault``; those cases fall back to
    the uncalibrated predictor (still fuzzing db/query/budget).
    """
    case = _make_case(index)
    if case["kind"].endswith("/adversarial"):
        case["model"] = None
        case["kind"] = case["kind"].split("/")[0] + "/none*"
    return case


@pytest.mark.parametrize("index", range(RACE_CASE_COUNT))
def test_analyze_race_agrees_with_run(index):
    """(d): scripted-slowdown races land exactly on the forecast."""
    from repro.runtime import faults, racing

    case = _race_case(index)
    overlap = RACE_OVERLAPS[index % len(RACE_OVERLAPS)]
    plan = plan_chain(
        case["db"],
        case["query"],
        budget=case["budget"],
        quantity=case["quantity"],
        epsilon=case["epsilon"],
        delta=case["delta"],
        cost_model=case["model"],
        race=overlap,
    )
    race = plan.race
    assert race is not None and race.overlap == overlap
    assert race.winner == plan.selected

    # Script each forecast-ok engine to take exactly its predicted
    # time; failing engines refuse on their own and need no fault.
    predicted = {f.engine: f.predicted_seconds for f in plan.forecasts}
    script = {
        name: faults.SlowdownFault(seconds=predicted[name])
        for name, outcome in race.outcomes.items()
        if outcome in ("won", "preempted", "cancelled")
        and math.isfinite(predicted[name])
    }
    with racing.use_scheduler(faults.VirtualScheduler()):
        with faults.inject(script):
            try:
                result = run_with_fallback(
                    case["db"],
                    case["query"],
                    budget=case["budget"],
                    quantity=case["quantity"],
                    epsilon=case["epsilon"],
                    delta=case["delta"],
                    rng=case["seed"],
                    cost_model=case["model"],
                    race=overlap,
                )
            except FallbackExhausted as exc:
                assert race.winner is None, (
                    f"[{case['kind']}] race exhausted but analyze forecast "
                    f"winner {race.winner!r}"
                )
                run_outcomes = {a.engine: a.outcome for a in exc.attempts}
                forecast_outcomes = {
                    engine: outcome
                    for engine, outcome in race.outcomes.items()
                    if outcome != "not_launched"
                }
                assert run_outcomes == forecast_outcomes
                return

    assert race.winner == result.engine, (
        f"[{case['kind']}] analyze forecast race winner {race.winner!r} "
        f"but the race selected {result.engine!r}"
    )
    run_outcomes = {a.engine: a.outcome for a in result.attempts}
    run_outcomes[result.engine] = "won"
    forecast_outcomes = {
        engine: outcome
        for engine, outcome in race.outcomes.items()
        if outcome != "not_launched"
    }
    assert run_outcomes == forecast_outcomes, (
        f"[{case['kind']}] race outcome map diverged from the forecast"
    )


def test_race_fuzz_covers_wins_losses_and_exhaustion():
    """The racing fuzz space exercises every interesting fate."""
    winners = set()
    fates = set()
    exhausted = 0
    for index in range(RACE_CASE_COUNT):
        case = _race_case(index)
        plan = plan_chain(
            case["db"],
            case["query"],
            budget=case["budget"],
            quantity=case["quantity"],
            epsilon=case["epsilon"],
            delta=case["delta"],
            cost_model=case["model"],
            race=RACE_OVERLAPS[index % len(RACE_OVERLAPS)],
        )
        if plan.race.winner is None:
            exhausted += 1
        else:
            winners.add(plan.race.winner)
        fates.update(plan.race.outcomes.values())
    assert winners == set(DEFAULT_CHAIN)
    assert exhausted >= 5
    assert {"won", "cancelled", "not_launched"} <= fates


def test_reordering_changes_selection_only_within_tiers():
    """A model that inverts additive costs flips KL<->MC, never tiers."""
    rng = random.Random(42)
    db = random_unreliable_database(
        rng, size=4, relations={"E": 2, "S": 1}, density=0.4
    )
    query = FOQuery("forall x. exists y. E(x, y)")  # non-CQ: lifted out
    budget = Budget(max_atoms=2)  # exact out too
    features = {name: 1.0 for name in FEATURE_NAMES}
    cheap_mc = fit(
        [
            CostObservation("karp_luby", 1.0 * j, dict(features))
            for j in (0.9, 1.0, 1.1)
        ]
        + [
            CostObservation("montecarlo", 0.001 * j, dict(features))
            for j in (0.9, 1.0, 1.1)
        ]
    )
    plan = plan_chain(db, query, budget=budget, cost_model=cheap_mc)
    result = run_with_fallback(
        db, query, budget=Budget(max_atoms=2), rng=7, cost_model=cheap_mc
    )
    assert plan.selected == result.engine == "montecarlo"
    assert plan.chain.index("montecarlo") > plan.chain.index("safe_lifted")
