"""Speculative racing: determinism, tier rules, cancellation, parity.

The virtual-clock scheduler (:class:`repro.runtime.faults.VirtualScheduler`)
makes every scripted interleaving replayable bit-for-bit, so these
tests assert *exact* winners, values, attempt logs, and
``runtime.race.*`` counters — not distributions.  A small real-thread
section checks the production :class:`ThreadScheduler` end to end.

``RACE_STRESS_SEEDS`` (environment) widens the determinism matrix for
the CI ``race-stress`` lane: each seed derives a fresh fault script and
the whole matrix re-runs.
"""

import os
import random

import pytest

from repro import obs
from repro.runtime import faults, racing
from repro.runtime.budget import Budget, CancelToken, RacerBudget
from repro.runtime.executor import DEFAULT_CHAIN, run_with_fallback
from repro.util.errors import BudgetExceeded, FallbackExhausted, ResourceError

QUERY = "exists x. exists y. E(x, y) & S(y)"

# A non-conjunctive query: the dichotomy router skips the static tier
# and lets the samplers race.  QUERY itself is statically *safe*, so
# under the new routing a race on the default chain keeps only the
# exact-tier engines (sampling racers are suppressed, recorded as
# ``skipped_static``).
UNSAFE = "exists x y. E(x, y) & S(y) | exists x. S(x)"


def _race_counters(recorder):
    return {
        name: value
        for name, value in recorder.summary().get("counters", {}).items()
        if name.startswith("runtime.race")
    }


def _virtual_race(
    db,
    query=QUERY,
    script=None,
    chain=None,
    overlap=0.5,
    budget=None,
    rng=7,
    quantity="reliability",
    ticks=None,
):
    """One scripted race on the virtual clock; returns (result, counters).

    ``result`` is the ``RuntimeResult`` or the raised
    ``FallbackExhausted``; counters are the ``runtime.race.*`` slice.
    """
    recorder = obs.StatsRecorder(sink=obs.ListSink())
    scheduler = faults.VirtualScheduler(ticks=ticks)
    outcome = None
    with obs.use(recorder):
        with racing.use_scheduler(scheduler):
            with faults.inject(script or {}):
                try:
                    outcome = run_with_fallback(
                        db,
                        query,
                        chain=chain or DEFAULT_CHAIN,
                        budget=budget,
                        quantity=quantity,
                        rng=rng,
                        race=overlap,
                    )
                except FallbackExhausted as exc:
                    outcome = exc
    return outcome, _race_counters(recorder)


def _fingerprint(outcome):
    """Everything determinism promises to pin, as one comparable value."""
    if isinstance(outcome, FallbackExhausted):
        return (
            "exhausted",
            tuple((a.engine, a.outcome, a.elapsed) for a in outcome.attempts),
        )
    return (
        outcome.engine,
        outcome.value,
        outcome.elapsed,
        tuple((a.engine, a.outcome, a.elapsed) for a in outcome.attempts),
    )


# ---------------------------------------------------------------------- #
# winner selection and tier rules
# ---------------------------------------------------------------------- #


def test_fast_equal_tier_engine_cancels_a_stalled_one(triangle_db):
    """exact (same tier) finishes first and cancels a stalled safe_lifted."""
    result, counters = _virtual_race(
        triangle_db,
        script={"safe_lifted": faults.SlowdownFault(seconds=3.0)},
    )
    assert result.engine == "exact"
    outcomes = {a.engine: a.outcome for a in result.attempts}
    assert outcomes["safe_lifted"] == "cancelled"
    assert outcomes["exact"] == "ok"
    # QUERY is statically safe: the sampling racers were suppressed
    # before launch, not raced and cancelled.
    assert outcomes["karp_luby"] == "skipped_static"
    assert outcomes["montecarlo"] == "skipped_static"
    assert counters["runtime.race.won"] == 1
    assert counters["runtime.race.cancelled"] == 1
    # The win came at the stagger point, not after safe_lifted's stall.
    assert result.elapsed == pytest.approx(0.5 * racing.NOMINAL_SHARE_SECONDS)


def test_stronger_engine_preempts_a_weaker_finished_answer(triangle_db):
    """An exact answer arriving later preempts the held sampler answer."""
    result, counters = _virtual_race(
        triangle_db,
        query=UNSAFE,  # statically safe queries never launch samplers
        script={
            "karp_luby": faults.SlowdownFault(seconds=0.5),
            "exact": faults.SlowdownFault(seconds=1.0),
        },
        chain=("karp_luby", "exact"),
        overlap=0.0,
    )
    assert result.engine == "exact"
    assert result.guarantee == "exact"
    outcomes = {a.engine: a.outcome for a in result.attempts}
    assert outcomes["karp_luby"] == "preempted"
    assert counters["runtime.race.preempted"] == 1
    assert result.elapsed == pytest.approx(1.0)


def test_weaker_answer_never_preempts_a_stronger_one(triangle_db):
    """The reverse: exact finishes first, the sampler never wins."""
    result, _ = _virtual_race(
        triangle_db,
        query=UNSAFE,
        script={
            "exact": faults.SlowdownFault(seconds=0.5),
            "karp_luby": faults.SlowdownFault(seconds=0.6),
        },
        chain=("exact", "karp_luby"),
        overlap=0.0,
    )
    assert result.engine == "exact"
    outcomes = {a.engine: a.outcome for a in result.attempts}
    assert outcomes["karp_luby"] == "cancelled"


def test_failed_engine_falls_through_to_the_next(triangle_db):
    """A timed-out engine launches the next one immediately."""
    result, counters = _virtual_race(
        triangle_db,
        query=UNSAFE,  # safe_lifted skipped statically; samplers race
        script={"exact": faults.TimeoutFault()},
    )
    assert result.engine == "karp_luby"
    outcomes = {a.engine: a.outcome for a in result.attempts}
    assert outcomes["safe_lifted"] == "skipped_static"
    assert outcomes["exact"] == "budget_exceeded"
    # The failure cost no virtual time, so the winner decides at t=0.
    assert result.elapsed == pytest.approx(0.0)
    assert counters["runtime.race.launched"] == 2


def test_all_engines_failing_exhausts_with_full_attempt_log(triangle_db):
    script = {name: faults.TimeoutFault() for name in DEFAULT_CHAIN}
    outcome, counters = _virtual_race(triangle_db, script=script)
    assert isinstance(outcome, FallbackExhausted)
    # QUERY is safe: the samplers are statically suppressed, the
    # exact-tier racers fail for real, and the log covers all four.
    assert sorted(a.engine for a in outcome.attempts) == sorted(DEFAULT_CHAIN)
    by_engine = {a.engine: a.outcome for a in outcome.attempts}
    assert by_engine["safe_lifted"] == "budget_exceeded"
    assert by_engine["exact"] == "budget_exceeded"
    assert by_engine["karp_luby"] == "skipped_static"
    assert by_engine["montecarlo"] == "skipped_static"
    assert "runtime.race.won" not in counters


def test_engines_after_a_win_are_never_launched(triangle_db):
    """A decided race drops its pending tail — no speculative stragglers."""
    result, counters = _virtual_race(triangle_db, overlap=1.0)
    assert result.engine == "safe_lifted"
    assert counters["runtime.race.launched"] == 1
    launched = [a for a in result.attempts if a.outcome != "skipped_static"]
    assert len(launched) == 1


# ---------------------------------------------------------------------- #
# value parity and budget folding
# ---------------------------------------------------------------------- #


def test_race_value_equals_sequential_value(triangle_db):
    sequential = run_with_fallback(triangle_db, QUERY, rng=7)
    raced, _ = _virtual_race(triangle_db, rng=7)
    assert raced.engine == sequential.engine
    assert raced.value == sequential.value
    assert raced.guarantee == sequential.guarantee


def test_winner_value_equals_its_solo_sequential_value(triangle_db):
    """Per-attempt rng derivation: the race never perturbs a value."""
    raced, _ = _virtual_race(
        triangle_db,
        query=UNSAFE,
        script={"exact": faults.TimeoutFault()},
        rng=11,
    )
    assert raced.engine == "karp_luby"
    # The solo run needs the same trace cadence: a recorder caps sample
    # batches to the convergence-trace stride, which shifts the stream.
    with obs.use(obs.StatsRecorder(sink=obs.ListSink())):
        solo = run_with_fallback(
            triangle_db, UNSAFE, chain=("karp_luby",), rng=11
        )
    assert raced.value == solo.value


def test_loser_samples_fold_into_the_shared_budget(triangle_db):
    """Losers' real draws are charged after the race (winner's too)."""
    budget = Budget(max_samples=200_000)
    result, _ = _virtual_race(
        triangle_db,
        query=UNSAFE,
        script={
            "exact": faults.TimeoutFault(),
            "karp_luby": faults.SlowdownFault(seconds=2.0),
        },
        overlap=0.0,
        budget=budget,
    )
    assert result.engine == "montecarlo"
    assert budget.samples > 0


def test_deadline_exhausted_engines_fail_without_starting(triangle_db):
    scheduler = faults.VirtualScheduler()
    budget = Budget(deadline=1.0, max_samples=200_000, clock=scheduler.now)
    recorder = obs.StatsRecorder(sink=obs.ListSink())
    with obs.use(recorder):
        with racing.use_scheduler(scheduler):
            with faults.inject({"exact": faults.SlowdownFault(seconds=5.0)}):
                result = run_with_fallback(
                    triangle_db, UNSAFE, budget=budget, rng=7, race=0.5
                )
    # exact blows the shared deadline mid-stall (safe_lifted is skipped
    # statically); the samplers launched within the deadline window
    # still answer.
    assert result.engine in ("karp_luby", "montecarlo")


def test_overlap_validation():
    with pytest.raises(ResourceError):
        run_with_fallback(None, QUERY, race=-0.5)
    with pytest.raises(ResourceError):
        run_with_fallback(None, QUERY, race=float("inf"))


# ---------------------------------------------------------------------- #
# determinism: same script + seed => same everything
# ---------------------------------------------------------------------- #


def _script_from_seed(seed):
    """A deterministic fault script derived from one stress seed."""
    rng = random.Random(seed)
    script = {}
    for name in DEFAULT_CHAIN:
        roll = rng.random()
        if roll < 0.3:
            script[name] = faults.TimeoutFault()
        elif roll < 0.45:
            script[name] = faults.ExceptionFault()
        elif roll < 0.8:
            script[name] = faults.SlowdownFault(
                seconds=round(rng.uniform(0.0, 3.0), 3)
            )
    return script


def _stress_seeds():
    raw = os.environ.get("RACE_STRESS_SEEDS", "")
    if raw.strip():
        return [int(token) for token in raw.replace(",", " ").split()]
    return list(range(6))


@pytest.mark.parametrize("seed", _stress_seeds())
@pytest.mark.parametrize("overlap", [0.0, 0.5, 1.5])
def test_scripted_races_replay_bit_for_bit(triangle_db, seed, overlap):
    script = _script_from_seed(seed)
    first, counters_first = _virtual_race(
        triangle_db, script=script, overlap=overlap, rng=seed
    )
    second, counters_second = _virtual_race(
        triangle_db, script=script, overlap=overlap, rng=seed
    )
    assert _fingerprint(first) == _fingerprint(second)
    assert counters_first == counters_second


# ---------------------------------------------------------------------- #
# real threads (the production scheduler)
# ---------------------------------------------------------------------- #


def test_real_thread_race_smoke(triangle_db):
    sequential = run_with_fallback(triangle_db, QUERY, rng=7)
    raced = run_with_fallback(triangle_db, QUERY, rng=7, race=True)
    assert raced.engine == sequential.engine
    assert raced.value == sequential.value


def test_real_thread_race_with_stalled_first_engine(triangle_db):
    """A stalled safe_lifted engine loses to exact on the wall clock."""
    with faults.inject({"safe_lifted": faults.SlowdownFault(seconds=5.0)}):
        result = run_with_fallback(triangle_db, QUERY, rng=7, race=0.01)
    assert result.engine == "exact"
    assert result.elapsed < 2.0  # nowhere near the 5s stall


def test_race_sleep_outside_a_race_is_plain_sleep():
    racing.race_sleep(0.0)  # no scheduler, no token: must not raise


# ---------------------------------------------------------------------- #
# the budget-layer primitives racing is built from
# ---------------------------------------------------------------------- #


def test_cancel_token_checkpoint_raises():
    token = CancelToken()
    budget = RacerBudget(Budget(), token)
    budget.consume(samples=1)
    token.cancel("loser")
    with pytest.raises(BudgetExceeded, match="loser"):
        budget.consume(samples=1)


def test_racer_budget_ledgers_are_private():
    parent = Budget(max_samples=100)
    racer = RacerBudget(parent, CancelToken(), sample_headroom=10)
    racer.consume(samples=5)
    assert parent.samples == 0
    assert racer.samples == 5
    assert racer.remaining_samples() == 5
    with pytest.raises(BudgetExceeded):
        racer.consume(samples=6)


def test_racer_budget_checkpoint_hook_runs_first():
    calls = []
    token = CancelToken()
    racer = RacerBudget(Budget(), token, on_checkpoint=lambda: calls.append(1))
    token.cancel()
    with pytest.raises(BudgetExceeded):
        racer.consume()
    assert calls == [1]  # the scheduler yield happened before the check
