"""Property-based tests for the adaptive controller and cost surrogate.

Hypothesis sweeps the knobs the unit tests pin:

* the stopping time is monotone in both ``epsilon`` and ``delta`` —
  asking for a weaker guarantee can never cost more samples, because
  at any fixed checkpoint the data are identical and the stopping
  predicate is monotone in both parameters;
* the controller never stops before the first canonical checkpoint
  (one full block), and never draws past the worst case;
* the unspent-budget refund is never negative and always accounts
  exactly: ``drawn + saved == worst``;
* the surrogate's exponentially-weighted refit never degrades its
  prediction on its own training window: the EW estimate is the
  weighted mean for the EW weights, so its weighted SSE is no worse
  than the cold (worst-case 1.0) prediction it replaces.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.runtime.adaptive import (
    ADAPTIVE_BLOCK_BITS,
    CostSurrogate,
    adaptive_mean,
    block_layout,
    check_grid,
    sequential_delta,
    use_surrogate,
)

SETTINGS = settings(max_examples=25, deadline=None)


def bernoulli_draw(seed, p):
    """A pure (index, width) -> (sum, sum of squares) Bernoulli block."""

    def draw(index, width):
        rng = random.Random(f"{seed}:{index}")
        hits = float(sum(rng.random() < p for _ in range(width)))
        return hits, hits

    return draw


def run(seed, p, worst, epsilon, delta, mode="additive", chunk_blocks=1):
    with use_surrogate(CostSurrogate()):
        return adaptive_mean(
            bernoulli_draw(seed, p),
            worst,
            epsilon,
            delta,
            mode=mode,
            chunk_blocks=chunk_blocks,
        )


# --------------------------------------------------------------------- #
# Stopping-time monotonicity
# --------------------------------------------------------------------- #


@SETTINGS
@given(
    seed=st.integers(0, 2**16),
    p=st.floats(0.0, 1.0),
    worst=st.integers(1, 2048),
    epsilons=st.tuples(st.floats(0.02, 0.5), st.floats(0.02, 0.5)),
    delta=st.floats(0.01, 0.5),
    mode=st.sampled_from(["additive", "relative"]),
)
def test_stopping_time_monotone_in_epsilon(
    seed, p, worst, epsilons, delta, mode
):
    tight, loose = sorted(epsilons)
    demanding = run(seed, p, worst, tight, delta, mode)
    relaxed = run(seed, p, worst, loose, delta, mode)
    assert relaxed.drawn <= demanding.drawn


@SETTINGS
@given(
    seed=st.integers(0, 2**16),
    p=st.floats(0.0, 1.0),
    worst=st.integers(1, 2048),
    epsilon=st.floats(0.02, 0.5),
    deltas=st.tuples(st.floats(0.01, 0.5), st.floats(0.01, 0.5)),
    mode=st.sampled_from(["additive", "relative"]),
)
def test_stopping_time_monotone_in_delta(
    seed, p, worst, epsilon, deltas, mode
):
    confident, sloppy = sorted(deltas)
    demanding = run(seed, p, worst, epsilon, confident, mode)
    relaxed = run(seed, p, worst, epsilon, sloppy, mode)
    assert relaxed.drawn <= demanding.drawn


# --------------------------------------------------------------------- #
# Schedule floor, ceiling, and exact refund accounting
# --------------------------------------------------------------------- #


@SETTINGS
@given(
    seed=st.integers(0, 2**16),
    p=st.floats(0.0, 1.0),
    worst=st.integers(1, 2048),
    epsilon=st.floats(0.02, 0.5),
    delta=st.floats(0.01, 0.5),
    chunk_blocks=st.integers(1, 16),
)
def test_never_stops_before_first_block_never_exceeds_worst(
    seed, p, worst, epsilon, delta, chunk_blocks
):
    result = run(
        seed, p, worst, epsilon, delta, chunk_blocks=chunk_blocks
    )
    assert result.drawn >= min(worst, ADAPTIVE_BLOCK_BITS)
    assert result.drawn <= worst
    assert result.checks >= 1


@SETTINGS
@given(
    seed=st.integers(0, 2**16),
    p=st.floats(0.0, 1.0),
    worst=st.integers(1, 2048),
    epsilon=st.floats(0.02, 0.5),
    delta=st.floats(0.01, 0.5),
)
def test_refund_never_negative_and_accounts_exactly(
    seed, p, worst, epsilon, delta
):
    with use_surrogate(CostSurrogate()):
        with obs.recording() as rec:
            result = adaptive_mean(
                bernoulli_draw(seed, p), worst, epsilon, delta
            )
        counters = rec.summary()["counters"]
    assert result.saved >= 0
    assert result.drawn + result.saved == worst
    assert counters["adaptive.samples_saved"] == result.saved
    assert counters["adaptive.samples_drawn"] == result.drawn


@SETTINGS
@given(worst=st.integers(1, 1 << 16))
def test_block_layout_and_grid_are_canonical(worst):
    layout = block_layout(worst)
    assert sum(width for _, width in layout) == worst
    assert all(
        width == ADAPTIVE_BLOCK_BITS for _, width in layout[:-1]
    )
    assert [index for index, _ in layout] == list(range(len(layout)))
    grid = check_grid(len(layout))
    assert grid[0] == 1
    assert grid[-1] == len(layout)
    assert list(grid) == sorted(set(grid))


@SETTINGS
@given(delta=st.floats(0.01, 0.99), checks=st.integers(1, 64))
def test_sequential_deltas_union_bound_under_delta(delta, checks):
    # Two bounds per checkpoint; the total failure budget stays < delta
    # no matter how many checkpoints the grid ends up with.
    spent = sum(
        2.0 * sequential_delta(delta, check)
        for check in range(1, checks + 1)
    )
    assert spent < delta


# --------------------------------------------------------------------- #
# Surrogate refit quality on its own training window
# --------------------------------------------------------------------- #


@SETTINGS
@given(
    observations=st.lists(
        st.tuples(st.integers(1, 1000), st.integers(1, 1000)),
        min_size=1,
        max_size=32,
    ),
    alpha=st.floats(0.05, 1.0),
)
def test_surrogate_refit_never_degrades_on_training_window(
    observations, alpha
):
    surrogate = CostSurrogate(alpha=alpha)
    fractions = []
    for drawn, worst in observations:
        drawn = min(drawn, worst)
        surrogate.observe("karp_luby", drawn, worst)
        fractions.append(
            min(1.0, max(surrogate.floor, drawn / worst))
        )
    predicted = surrogate.expected_fraction("karp_luby")
    # The EW estimate is the weighted mean for the EW weights ...
    n = len(fractions)
    weights = [
        (1.0 - alpha) ** (n - 1) if i == 0
        else alpha * (1.0 - alpha) ** (n - 1 - i)
        for i in range(n)
    ]
    assert abs(sum(weights) - 1.0) < 1e-9
    sse = lambda guess: sum(
        weight * (fraction - guess) ** 2
        for weight, fraction in zip(weights, fractions)
    )
    # ... so on its weighted training window it can never predict
    # worse than the cold worst-case fraction it replaces.
    assert sse(predicted) <= sse(1.0) + 1e-9
    assert surrogate.floor <= predicted <= 1.0


@SETTINGS
@given(
    fractions=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=16),
    stale_after=st.integers(1, 8),
)
def test_surrogate_staleness_reverts_to_worst_case(
    fractions, stale_after
):
    surrogate = CostSurrogate(stale_after=stale_after)
    for fraction in fractions:
        surrogate.observe("karp_luby", int(fraction * 1000), 1000)
    # Fresh: some learned value in [floor, 1].  Then a flood of other
    # activity ages the kind past the staleness window.
    assert surrogate.floor <= surrogate.expected_fraction("karp_luby") <= 1.0
    for _ in range(stale_after + 1):
        surrogate.observe("montecarlo", 500, 1000)
    assert surrogate.expected_fraction("karp_luby") == 1.0
    assert surrogate.expected_fraction("unknown_kind") == 1.0
