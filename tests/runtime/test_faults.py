"""Fault injection: every fault type drives a real degradation path.

The ISSUE's contract: for each injected fault type there is a test
asserting (a) the fallback counter in :mod:`repro.obs` incremented and
(b) the final result's guarantee metadata is correct.
"""

import pytest

from repro import obs
from repro.obs.recorder import StatsRecorder
from repro.obs.sink import ListSink
from repro.runtime import faults
from repro.runtime.budget import Budget
from repro.runtime.executor import DEFAULT_CHAIN, ENGINES, run_with_fallback
from repro.util.errors import (
    FallbackExhausted,
    ProbabilityError,
    QueryError,
    ResourceError,
)

EXISTENTIAL = "exists x y. E(x, y) & S(y)"


@pytest.fixture
def recorder():
    with obs.use(StatsRecorder(sink=ListSink())) as active:
        yield active


def counters(recorder):
    return recorder.summary()["counters"]


class TestTimeoutFault:
    def test_degrades_and_counts(self, triangle_db, recorder):
        with faults.inject({"safe_lifted": faults.TimeoutFault()}):
            result = run_with_fallback(triangle_db, EXISTENTIAL)
        stats = counters(recorder)
        assert stats["runtime.fallbacks"] == 1
        assert stats["runtime.budget_exceeded"] == 1
        assert stats["runtime.faults_injected"] == 1
        # safe_lifted timed out; exact (also exact-guarantee) answers.
        assert result.engine == "exact"
        assert result.guarantee == "exact"
        assert result.epsilon is None and result.delta is None
        assert result.attempts[0].outcome == "budget_exceeded"
        assert "injected timeout" in result.attempts[0].detail

    def test_both_exact_engines_out_leaves_sampler(self, triangle_db, recorder):
        fault = faults.TimeoutFault()
        with faults.inject({"safe_lifted": fault, "exact": fault}):
            result = run_with_fallback(
                triangle_db, EXISTENTIAL, epsilon=0.2, delta=0.2, rng=3
            )
        stats = counters(recorder)
        assert stats["runtime.fallbacks"] == 2
        assert stats["runtime.faults_injected"] == 2
        assert result.engine in ("karp_luby", "montecarlo")
        assert result.guarantee == "additive"
        assert result.epsilon == 0.2 and result.delta == 0.2


class TestExceptionFault:
    def test_default_error_is_fragment_mismatch(self, triangle_db, recorder):
        with faults.inject({"safe_lifted": faults.ExceptionFault()}):
            result = run_with_fallback(triangle_db, EXISTENTIAL)
        stats = counters(recorder)
        assert stats["runtime.fallbacks"] == 1
        assert stats["runtime.fragment_mismatch"] == 1
        assert result.engine == "exact"
        assert result.guarantee == "exact"
        assert result.attempts[0].outcome == "fragment_mismatch"
        assert "injected engine failure" in result.attempts[0].detail

    def test_custom_error_propagates_when_not_catchable(self, triangle_db):
        # Only CostRefused/BudgetExceeded/QueryError trigger fallback;
        # anything else is a genuine bug and must escape unchanged.
        with faults.inject(
            {"safe_lifted": faults.ExceptionFault(error=ValueError("boom"))}
        ):
            with pytest.raises(ValueError, match="boom"):
                run_with_fallback(triangle_db, EXISTENTIAL)

    def test_custom_query_error(self, triangle_db, recorder):
        fault = faults.ExceptionFault(error=QueryError("nope"))
        with faults.inject({"lifted": fault}):
            result = run_with_fallback(
                triangle_db, EXISTENTIAL, chain=("lifted", "montecarlo"),
                epsilon=0.2, delta=0.2, rng=1,
            )
        assert counters(recorder)["runtime.fallbacks"] == 1
        assert result.engine == "montecarlo"
        assert result.guarantee == "additive"


class TestSlowdownFault:
    def test_stall_blows_slice_and_degrades(self, triangle_db, recorder):
        # Fair-share slicing gives exact half the 0.2s deadline; the
        # 0.12s stall blows that slice (checkpoint right after the
        # stall), while the remaining ~0.08s is plenty for lifted.
        with faults.inject({"exact": faults.SlowdownFault(seconds=0.12)}):
            result = run_with_fallback(
                triangle_db,
                EXISTENTIAL,
                chain=("exact", "lifted"),
                budget=Budget(deadline=0.2),
            )
        stats = counters(recorder)
        assert stats["runtime.fallbacks"] == 1
        assert stats["runtime.budget_exceeded"] == 1
        assert stats["runtime.faults_injected"] == 1
        assert result.engine == "lifted"
        assert result.guarantee == "exact"
        assert result.attempts[0].outcome == "budget_exceeded"

    def test_without_deadline_engine_still_answers(self, triangle_db, recorder):
        with faults.inject({"safe_lifted": faults.SlowdownFault(seconds=0.01)}):
            result = run_with_fallback(triangle_db, EXISTENTIAL)
        stats = counters(recorder)
        assert stats["runtime.faults_injected"] == 1
        assert "runtime.fallbacks" not in stats
        assert result.engine == "safe_lifted"
        assert result.guarantee == "exact"

    def test_negative_seconds_rejected(self):
        with pytest.raises(ResourceError):
            faults.SlowdownFault(seconds=-1.0)


class TestDeterminism:
    def test_probability_zero_never_fires(self, triangle_db, recorder):
        fault = faults.TimeoutFault(probability=0.0)
        with faults.inject({"safe_lifted": fault}, rng=9):
            result = run_with_fallback(triangle_db, EXISTENTIAL)
        assert result.engine == "safe_lifted"
        assert "runtime.faults_injected" not in counters(recorder)

    def test_same_seed_same_firing_pattern(self, triangle_db):
        def run_once(seed):
            fault = faults.TimeoutFault(probability=0.5)
            engines = []
            with faults.inject({"safe_lifted": fault}, rng=seed):
                for _ in range(4):
                    engines.append(
                        run_with_fallback(triangle_db, EXISTENTIAL).engine
                    )
            return engines

        assert run_once(42) == run_once(42)

    def test_probability_outside_unit_interval_rejected(self):
        with pytest.raises(ProbabilityError):
            faults.TimeoutFault(probability=1.5)


class TestInjectContextManager:
    def test_registry_restored_on_exit(self, triangle_db):
        original = dict(ENGINES)
        with faults.inject({"exact": faults.TimeoutFault()}):
            assert ENGINES["exact"] is not original["exact"]
        assert ENGINES == original

    def test_registry_restored_on_error(self):
        original = dict(ENGINES)
        with pytest.raises(RuntimeError):
            with faults.inject({"exact": faults.TimeoutFault()}):
                raise RuntimeError("boom")
        assert ENGINES == original

    def test_unknown_engine_rejected(self):
        with pytest.raises(ResourceError, match="unknown engines"):
            with faults.inject({"warp_drive": faults.TimeoutFault()}):
                pass

    def test_non_fault_value_rejected(self):
        with pytest.raises(ResourceError, match="must be a Fault"):
            with faults.inject({"exact": "not a fault"}):
                pass

    def test_all_engines_faulted_exhausts_chain(self, triangle_db, recorder):
        fault = faults.TimeoutFault()
        with faults.inject({name: fault for name in ENGINES}):
            with pytest.raises(FallbackExhausted):
                run_with_fallback(triangle_db, EXISTENTIAL)
        stats = counters(recorder)
        # Fallbacks are per chain attempt; the default chain is the
        # unit, not the full engine registry.
        assert stats["runtime.fallbacks"] == len(DEFAULT_CHAIN)
        assert stats["runtime.exhausted"] == 1
