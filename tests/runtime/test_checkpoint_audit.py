"""The checkpoint coverage audit: every engine hot loop is budget-aware.

This closes the ROADMAP item "audit all engines for checkpoint
coverage".  The audit walks the registered engine modules' ASTs; a
failure here means a looping engine function neither calls
``runtime.checkpoint`` (directly or via a helper) nor carries a
documented exemption in ``repro.runtime.audit.EXEMPTIONS``.
"""

import ast

from repro.runtime import audit
from repro.runtime.audit import (
    ENGINE_MODULES,
    _collect,
    audit_checkpoints,
    stale_exemptions,
)


def test_engine_modules_have_no_unchecked_hot_loops():
    assert audit_checkpoints() == []


def test_exemption_list_is_not_stale():
    # Every exemption must still name a real function, so renames force
    # the documented reason to move with the code.
    assert stale_exemptions() == []


def test_engine_module_list_covers_sampling_engines():
    for module in (
        "repro.reliability.montecarlo",
        "repro.propositional.karp_luby",
        "repro.kernels.sampling",
        "repro.kernels.gray",
    ):
        assert module in ENGINE_MODULES


def _violations_of(source: str) -> list:
    functions = _collect("synthetic", ast.parse(source))
    compliant = {
        info.qualname.rsplit(".", 1)[-1]
        for info in functions
        if info.checkpoints
    }
    return [
        info.qualname
        for info in functions
        if info.loops and not (info.checkpoints or info.calls & compliant)
    ]


def test_audit_flags_a_loop_without_checkpoint():
    source = """
def runaway(samples):
    hits = 0
    for _ in range(samples):
        hits += 1
    return hits
"""
    assert _violations_of(source) == ["runaway"]


def test_audit_accepts_direct_and_delegated_checkpoints():
    source = """
def direct(samples):
    for _ in range(samples):
        checkpoint(samples=1)

def helper():
    checkpoint(samples=1)

def delegated(samples):
    for _ in range(samples):
        helper()
"""
    assert _violations_of(source) == []


def test_audit_separates_nested_functions():
    # A nested def's loop must not inherit the outer function's
    # checkpoint call, and vice versa.
    source = """
def outer(samples):
    checkpoint(samples=samples)

    def inner():
        for _ in range(samples):
            pass
    return inner
"""
    assert _violations_of(source) == ["outer.inner"]


def test_exemptions_carry_reasons():
    for key, reason in audit.EXEMPTIONS.items():
        assert isinstance(reason, str) and reason, key
