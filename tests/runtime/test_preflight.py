"""Cost preflight: refuse hopeless runs before doing any work."""

import pytest

from repro import obs
from repro.logic.evaluator import FOQuery
from repro.obs.recorder import StatsRecorder
from repro.reliability.exact import truth_probability
from repro.reliability.montecarlo import estimate_truth_probability
from repro.runtime.budget import Budget, apply
from repro.runtime.preflight import (
    grounding_cost,
    preflight_grounding,
    preflight_samples,
    preflight_worlds,
    worlds_cost,
)
from repro.util.errors import CostRefused
from repro.workloads.random_db import random_unreliable_database
from repro.util.rng import make_rng


class TestWorldsPreflight:
    def test_cost_formula(self):
        assert worlds_cost(0) == 1
        assert worlds_cost(10) == 1024

    def test_fits_returns_estimate(self):
        assert preflight_worlds(3, Budget(max_worlds=8)) == 8

    def test_refuses_over_limit_with_estimate(self):
        with pytest.raises(CostRefused) as exc_info:
            preflight_worlds(4, Budget(max_worlds=15))
        refusal = exc_info.value
        assert refusal.estimate == 16
        assert refusal.limit == 15
        # The message names the predicted world count (satellite spec).
        assert "2^4 = 16 worlds" in str(refusal)

    def test_default_budget_guards_at_max_atoms(self):
        preflight_worlds(20)  # 2^20: exactly at the default guard
        with pytest.raises(CostRefused):
            preflight_worlds(21)

    def test_uncapped_budget_allows_anything(self):
        huge = preflight_worlds(64, Budget(max_atoms=None))
        assert huge == 1 << 64

    def test_refusal_counted_in_obs(self):
        with obs.use(StatsRecorder()) as recorder:
            with pytest.raises(CostRefused):
                preflight_worlds(5, Budget(max_worlds=2))
            counters = recorder.summary()["counters"]
        assert counters["preflight.worlds_refused"] == 1


class TestGroundingPreflight:
    def test_cost_formula(self):
        # |templates| * n^|vars|
        assert grounding_cost(10, 2, 3) == 300

    def test_no_default_cap(self):
        assert preflight_grounding(100, 4, 50) == 50 * 100**4

    def test_refuses_over_budget(self):
        with pytest.raises(CostRefused) as exc_info:
            preflight_grounding(10, 3, 2, Budget(max_ground_clauses=1000))
        assert exc_info.value.estimate == 2000
        assert exc_info.value.limit == 1000


class TestSamplesPreflight:
    def test_uncapped_passes_through(self):
        assert preflight_samples(10**9) == 10**9

    def test_refuses_when_allowance_too_small(self):
        budget = Budget(max_samples=100)
        budget.consume(samples=40)
        with pytest.raises(CostRefused) as exc_info:
            preflight_samples(61, budget)
        assert exc_info.value.limit == 60

    def test_fits_within_remaining(self):
        assert preflight_samples(60, Budget(max_samples=100)) == 60


class TestEnginePreflightIntegration:
    """The engines actually consult the preflights (satellite guard)."""

    def test_worlds_method_refuses_many_atoms(self):
        # 25 uncertain atoms -> 2^25 predicted worlds > the 2^20 default
        # guard; the engine must refuse *before* enumerating anything.
        rng = make_rng(7)
        db = random_unreliable_database(
            rng, 5, {"E": 2}, density=1.0, uncertain_fraction=1.0
        )
        assert len(db.uncertain_atoms()) == 25
        query = FOQuery("exists x y. E(x, y)")
        with pytest.raises(CostRefused) as exc_info:
            truth_probability(db, query, method="worlds")
        assert exc_info.value.estimate == 1 << 25
        assert str(1 << 25) in str(exc_info.value)

    def test_worlds_method_allowed_with_uncapped_budget(self, triangle_db):
        query = FOQuery("exists x y. E(x, y)")
        with apply(Budget(max_atoms=None)):
            value = truth_probability(triangle_db, query, method="worlds")
        assert value == 1

    def test_sampler_refuses_undersized_allowance(self, triangle_db):
        query = FOQuery("exists x y. E(x, y)")
        with apply(Budget(max_samples=10)):
            with pytest.raises(CostRefused):
                # Hoeffding needs far more than 10 samples at this
                # epsilon/delta, so the run is refused up front.
                estimate_truth_probability(
                    triangle_db, query, make_rng(1), epsilon=0.05, delta=0.05
                )
