"""Differential tests for adaptive sampling against the fixed budget.

Three claims, each tested by running two independent code paths and
demanding agreement:

* *answers* — for pinned fuzzed instances, the adaptive estimate and
  the fixed worst-case estimate both land within the guarantee band of
  the exact value (they may differ from each other: the adaptive run
  consumes its own fixed block schedule);
* *schedules* — the adaptive answer is bit-identical for every value
  of the ``chunk_blocks`` driver knob, on all three estimator
  adapters: grouping block evaluation is a budget-accounting schedule,
  never a semantic one;
* *forecasts* — with adaptivity (and a deliberately warmed surrogate)
  enabled, ``plan_chain`` still selects exactly the engine
  ``run_with_fallback`` ends up answering with, because both wrap the
  cost model in the same :class:`SurrogateAdjustedModel`.
"""

import pytest

from repro.kernels.bitops import dyadic_bits
from repro.kernels.plan import (
    compile_dnf_plan,
    compile_hamming_plan,
    compile_truth_plan,
)
from repro.kernels.sampling import KlPlan
from repro.logic.evaluator import FOQuery
from repro.propositional.counting import probability_exact
from repro.propositional.karp_luby import karp_luby, sample_count
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.montecarlo import estimate_truth_probability
from repro.runtime.adaptive import (
    CostSurrogate,
    adaptive_hamming_estimate,
    adaptive_kl_accumulate,
    adaptive_truth_estimate,
    use_surrogate,
)
from repro.runtime.budget import Budget
from repro.runtime.costmodel import calibrate, plan_chain
from repro.runtime.executor import run_with_fallback
from repro.util.errors import FallbackExhausted
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database
from repro.workloads.random_dnf import random_kdnf, random_probabilities

EPSILON = 0.1
DELTA = 0.05
CHUNK_SCHEDULES = (1, 2, 3, 7, 64)


def _db(seed, size=4):
    return random_unreliable_database(
        make_rng(seed), size=size, relations={"E": 2, "S": 1},
        density=0.4, error="1/8",
    )


def _kl_plan(dnf, probs):
    """The compiled Karp-Luby plan, as ``karp_luby_samples`` builds it."""
    weights = []
    for clause in dnf.clauses:
        weight = 1.0
        for literal in clause:
            p = float(probs[literal.variable])
            weight *= p if literal.positive else 1.0 - p
        weights.append(weight)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    plan = compile_dnf_plan(dnf)
    float_probs = {v: float(probs[v]) for v in dnf.variables}
    return KlPlan(
        plan.clauses,
        tuple(dyadic_bits(float_probs[v]) for v in plan.variables),
        cumulative,
        sum(weights),
        "coverage",
    )


# --------------------------------------------------------------------- #
# Fuzzed adaptive-vs-fixed agreement within the guarantee band
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(12))
def test_truth_adaptive_and_fixed_agree_within_guarantee(seed):
    query = FOQuery("exists x. exists y. E(x, y) & S(y)")
    db = _db(100 + seed)
    exact = float(truth_probability(db, query, method="dnf"))
    with use_surrogate(CostSurrogate()):
        fixed = estimate_truth_probability(
            db, query, make_rng(seed), EPSILON, DELTA, adaptive=False
        )
        adaptive = estimate_truth_probability(
            db, query, make_rng(seed), EPSILON, DELTA, adaptive=True
        )
    assert abs(fixed - exact) <= EPSILON
    assert abs(adaptive - exact) <= EPSILON
    assert abs(fixed - adaptive) <= 2 * EPSILON


@pytest.mark.parametrize("seed", range(8))
def test_karp_luby_adaptive_and_fixed_agree_within_guarantee(seed):
    rng = make_rng(300 + seed)
    dnf = random_kdnf(rng, variables=8, clauses=4, width=3)
    probs = random_probabilities(rng, dnf)
    exact = float(probability_exact(dnf, probs))
    with use_surrogate(CostSurrogate()):
        fixed = karp_luby(
            dnf, probs, 0.2, 0.2, make_rng(seed), adaptive=False
        )
        adaptive = karp_luby(
            dnf, probs, 0.2, 0.2, make_rng(seed), adaptive=True
        )
    assert fixed.samples == sample_count(len(dnf.clauses), 0.2, 0.2)
    assert adaptive.samples <= fixed.samples
    assert abs(fixed.estimate - exact) <= 0.2 * exact
    assert abs(adaptive.estimate - exact) <= 0.2 * exact


# --------------------------------------------------------------------- #
# Bit-identical answers across every chunk_blocks schedule
# --------------------------------------------------------------------- #


def test_truth_answers_identical_across_chunk_schedules():
    query = FOQuery("exists x. exists y. E(x, y) & S(y)")
    db = _db(7)
    plan = compile_truth_plan(db, query, ())
    assert plan is not None and plan.constant is None
    with use_surrogate(CostSurrogate()):
        values = {
            chunk: adaptive_truth_estimate(
                plan, make_rng(1), 2000, EPSILON, DELTA,
                chunk_blocks=chunk,
            )
            for chunk in CHUNK_SCHEDULES
        }
    assert len(set(values.values())) == 1, values


def test_hamming_answers_identical_across_chunk_schedules():
    query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
    db = _db(8, size=5)
    plan = compile_hamming_plan(db, query)
    assert plan is not None
    with use_surrogate(CostSurrogate()):
        values = {
            chunk: adaptive_hamming_estimate(
                plan, make_rng(2), 2000, EPSILON, DELTA,
                chunk_blocks=chunk,
            )
            for chunk in CHUNK_SCHEDULES
        }
    assert len(set(values.values())) == 1, values


def test_karp_luby_runs_identical_across_chunk_schedules():
    rng = make_rng(3)
    dnf = random_kdnf(rng, variables=8, clauses=4, width=3)
    probs = random_probabilities(rng, dnf)
    kl_plan = _kl_plan(dnf, probs)
    with use_surrogate(CostSurrogate()):
        runs = {
            chunk: adaptive_kl_accumulate(
                kl_plan, make_rng(4), 2000, 0.2, 0.1,
                chunk_blocks=chunk,
            )
            for chunk in CHUNK_SCHEDULES
        }
    baseline = runs[1]
    for chunk, run in runs.items():
        assert run == baseline, chunk


def test_chunk_schedule_never_changes_sample_accounting():
    """Every schedule draws the same blocks, so the same sample count."""
    rng = make_rng(3)
    dnf = random_kdnf(rng, variables=8, clauses=4, width=3)
    probs = random_probabilities(rng, dnf)
    kl_plan = _kl_plan(dnf, probs)
    with use_surrogate(CostSurrogate()):
        drawn = {
            chunk: adaptive_kl_accumulate(
                kl_plan, make_rng(9), 3000, 0.15, 0.1,
                chunk_blocks=chunk,
            ).drawn
            for chunk in CHUNK_SCHEDULES
        }
    assert len(set(drawn.values())) == 1, drawn


# --------------------------------------------------------------------- #
# plan_chain forecasts vs run_with_fallback selection, adaptivity on
# --------------------------------------------------------------------- #


def test_analyze_run_agreement_with_adaptivity_and_warm_surrogate():
    model = calibrate(seed=0, repeats=1)
    surrogate = CostSurrogate()
    # Warm the surrogate asymmetrically: a forecast wrapper that only
    # one of the two paths saw would now break engine selection.
    surrogate.observe("karp_luby", 200, 2000)
    surrogate.observe("montecarlo", 1500, 2000)
    queries = [
        FOQuery("exists x. S(x) | (exists y. E(x, y) & S(y))"),
        FOQuery("exists x. exists y. E(x, y) & S(y) | exists x. S(x)"),
    ]
    with use_surrogate(surrogate):
        for index in range(4):
            db = random_unreliable_database(
                make_rng(500 + index), size=6, relations={"E": 2, "S": 1},
                density=0.6, uncertain_fraction=1.0,
            )
            query = queries[index % len(queries)]
            kwargs = dict(
                budget=Budget(max_atoms=16),
                epsilon=0.2,
                delta=0.2,
                cost_model=model,
                adaptive=True,
            )
            plan = plan_chain(db, query, **kwargs)
            try:
                result = run_with_fallback(db, query, rng=index, **kwargs)
                selected = result.engine
            except FallbackExhausted:
                selected = None
            assert plan.selected == selected, index


def test_adaptive_forecast_shows_expected_samples():
    """A warm surrogate surfaces expected-vs-worst sample forecasts."""
    surrogate = CostSurrogate()
    surrogate.observe("karp_luby", 100, 1000)
    surrogate.observe("montecarlo", 100, 1000)
    db = _db(11)
    # Disjunctive, so the dichotomy router cannot answer it exactly and
    # the chain walk reaches the sampling engines.
    query = FOQuery("exists x. S(x) | (exists y. E(x, y) & S(y))")
    with use_surrogate(surrogate):
        plan = plan_chain(
            db, query, budget=Budget(max_atoms=4),
            epsilon=0.2, delta=0.2, adaptive=True,
        )
    forecasts = {f.engine: f for f in plan.forecasts}
    sampled = [
        f for f in forecasts.values() if f.worst_samples is not None
    ]
    assert sampled, plan.describe()
    for forecast in sampled:
        assert 1 <= forecast.expected_samples <= forecast.worst_samples
    assert "expected/worst" in plan.describe()


def test_fixed_budget_answers_untouched_by_adaptive_flag_default():
    """adaptive=None (the default) must leave pinned values unchanged."""
    query = FOQuery("exists x. exists y. E(x, y) & S(y)")
    db = _db(12)
    with use_surrogate(CostSurrogate()):
        default = run_with_fallback(db, query, epsilon=0.2, delta=0.2, rng=1)
        explicit = run_with_fallback(
            db, query, epsilon=0.2, delta=0.2, rng=1, adaptive=False
        )
    assert default.value == explicit.value
    assert default.engine == explicit.engine


def test_reliability_exact_reference_for_fuzz_family():
    """The fuzz family's exact reference itself is internally coherent."""
    query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
    db = _db(8, size=5)
    value = reliability(db, query, method="qf")
    assert 0 < value <= 1
