"""The fallback executor: degradation order, budgets, provenance.

Includes the acceptance scenario for the resilient runtime: a database
whose exact enumeration is refused by preflight (> 2^20 worlds) still
answers within a 5-second deadline via a sampling engine, and the
attempt log names the degradation path.
"""

from fractions import Fraction

import pytest

from repro import obs
from repro.logic.evaluator import FOQuery
from repro.obs.recorder import StatsRecorder
from repro.obs.sink import ListSink
from repro.reliability.exact import reliability
from repro.runtime import faults
from repro.runtime.budget import Budget
from repro.runtime.executor import (
    DEFAULT_CHAIN,
    ENGINES,
    GUARANTEE_ORDER,
    RuntimeResult,
    run_with_fallback,
)
from repro.util.errors import (
    FallbackExhausted,
    QueryError,
    ResourceError,
)
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

EXISTENTIAL = "exists x y. E(x, y) & S(y)"


class TestChainValidation:
    def test_default_chain_is_ordered_by_guarantee(self):
        assert DEFAULT_CHAIN == (
            "safe_lifted",
            "exact",
            "karp_luby",
            "montecarlo",
        )
        assert GUARANTEE_ORDER == ("exact", "relative", "additive")
        # "lifted" stays registered for explicit chains even though the
        # default chain routes safe queries through "safe_lifted".
        assert set(DEFAULT_CHAIN) | {"lifted"} == set(ENGINES)

    def test_empty_chain_rejected(self, triangle_db):
        with pytest.raises(ResourceError, match="empty"):
            run_with_fallback(triangle_db, EXISTENTIAL, chain=())

    def test_unknown_engine_rejected(self, triangle_db):
        with pytest.raises(ResourceError, match="warp_drive"):
            run_with_fallback(triangle_db, EXISTENTIAL, chain=("warp_drive",))

    def test_unknown_quantity_rejected(self, triangle_db):
        with pytest.raises(QueryError, match="unknown quantity"):
            run_with_fallback(triangle_db, EXISTENTIAL, quantity="entropy")

    def test_probability_needs_boolean_query(self, triangle_db):
        with pytest.raises(QueryError, match="Boolean"):
            run_with_fallback(
                triangle_db,
                FOQuery("E(x, y)", ("x", "y")),
                quantity="probability",
            )


class TestHappyPath:
    def test_safe_query_routes_to_safe_lifted(self, triangle_db):
        # EXISTENTIAL is a safe (hierarchical, self-join-free) CQ: the
        # static router answers it on the dichotomy tier, never touching
        # enumeration or sampling.
        result = run_with_fallback(triangle_db, EXISTENTIAL)
        assert result.engine == "safe_lifted"
        assert result.guarantee == "exact"
        assert result.epsilon is None and result.delta is None
        assert isinstance(result.fraction, Fraction)
        assert result.fraction == reliability(triangle_db, EXISTENTIAL)
        assert float(result) == pytest.approx(float(result.fraction))
        assert [a.outcome for a in result.attempts] == ["ok"]

    def test_probability_quantity(self, triangle_db):
        result = run_with_fallback(
            triangle_db, EXISTENTIAL, quantity="probability"
        )
        assert result.quantity == "probability"
        assert result.guarantee == "exact"

    def test_kary_reliability(self, triangle_db):
        result = run_with_fallback(
            triangle_db, FOQuery("E(x, y) | S(x)", ("x", "y"))
        )
        assert result.engine == "exact"
        assert 0 <= result.value <= 1

    def test_describe_names_path_and_guarantee(self, triangle_db):
        result = run_with_fallback(triangle_db, EXISTENTIAL)
        text = result.describe()
        assert "safe_lifted: ok" in text
        assert "[exact]" in text
        assert "reliability =" in text


class TestDegradation:
    def test_cost_refusal_falls_through_to_sampler(self, triangle_db):
        # 4 uncertain atoms -> 16 worlds > 2^1: the dichotomy router
        # statically skips safe_lifted (not a CQ), exact is refused by
        # preflight, and a sampler answers with a weaker guarantee.
        result = run_with_fallback(
            triangle_db,
            "exists x y. E(x, y) & S(y) | exists x. S(x)",
            budget=Budget(max_atoms=1),
            epsilon=0.2,
            delta=0.2,
            rng=5,
        )
        assert result.engine in ("karp_luby", "montecarlo")
        assert result.guarantee == "additive"
        assert result.epsilon == 0.2
        path = [(a.engine, a.outcome) for a in result.attempts]
        assert path[0] == ("safe_lifted", "skipped_static")
        assert path[1] == ("exact", "cost_refused")
        assert path[-1][1] == "ok"

    def test_attempt_details_carry_error_messages(self, triangle_db):
        result = run_with_fallback(
            triangle_db,
            "exists x y. E(x, y) & S(y) | exists x. S(x)",
            budget=Budget(max_atoms=1),
            epsilon=0.2,
            delta=0.2,
            rng=5,
        )
        skipped = result.attempts[0]
        assert skipped.outcome == "skipped_static"
        assert "not_conjunctive" in skipped.detail
        refused = result.attempts[1]
        assert "worlds" in refused.detail
        assert result.attempts[-1].detail == ""

    def test_exhausted_when_no_engine_fits(self, triangle_db):
        # The lifted engines handle Boolean queries only; a k-ary query
        # on a lifted-only chain is statically skipped, leaving nothing
        # to answer.
        with pytest.raises(FallbackExhausted) as exc_info:
            run_with_fallback(
                triangle_db, FOQuery("E(x, y)", ("x", "y")), chain=("lifted",)
            )
        error = exc_info.value
        assert len(error.attempts) == 1
        assert error.attempts[0].outcome == "skipped_static"
        assert "lifted: skipped_static" in str(error)

    def test_expired_deadline_exhausts_chain(self, triangle_db):
        # A clock that jumps far past the deadline right after start:
        # every attempt dies before its engine runs.
        ticks = iter([0.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0])
        budget = Budget(deadline=1.0, clock=lambda: next(ticks))
        with pytest.raises(FallbackExhausted) as exc_info:
            run_with_fallback(
                triangle_db,
                EXISTENTIAL,
                chain=("exact", "montecarlo"),
                budget=budget,
            )
        outcomes = {a.outcome for a in exc_info.value.attempts}
        assert outcomes == {"budget_exceeded"}


class TestObservability:
    def test_counters_and_events(self, triangle_db):
        with obs.use(StatsRecorder(sink=ListSink())) as recorder:
            run_with_fallback(
                triangle_db,
                "exists x y. E(x, y) & S(y) | exists x. S(x)",
                budget=Budget(max_atoms=1),
                epsilon=0.2,
                delta=0.2,
                rng=5,
            )
            counters = recorder.summary()["counters"]
        assert counters["runtime.attempts"] >= 2
        assert counters["runtime.fallbacks"] >= 1
        assert counters["runtime.cost_refused"] == 1
        assert counters["runtime.skipped_static"] == 1
        assert counters["runtime.completed"] == 1
        assert counters["runtime.result.events"] == 1
        assert counters["runtime.fallback.events"] >= 1


class TestStaticSkipCounters:
    """A statically-skipped engine is not a *failure* (ISSUE 9 satellite).

    ``run_with_fallback`` must not count a dichotomy-router skip of the
    ``safe_lifted``/``lifted`` tier towards ``runtime.attempts``,
    ``runtime.fallbacks`` or ``runtime.fragment_mismatch``: the engine
    never ran, so breaker/fallback accounting stays exactly what it
    would be on a chain without the static tier.  The skip shows up only
    in its own counter, ``runtime.skipped_static``.
    """

    UNSAFE = "exists x y. E(x, y) & S(y) | exists x. S(x)"

    def _counters(self, db, chain):
        with obs.use(StatsRecorder(sink=ListSink())) as recorder:
            run_with_fallback(
                db,
                self.UNSAFE,
                chain=chain,
                epsilon=0.2,
                delta=0.2,
                rng=5,
            )
            return recorder.summary()["counters"]

    def test_skip_adds_no_attempts_or_fallbacks(self, triangle_db):
        with_tier = self._counters(triangle_db, DEFAULT_CHAIN)
        without_tier = self._counters(
            triangle_db, ("exact", "karp_luby", "montecarlo")
        )
        for key in (
            "runtime.attempts",
            "runtime.fallbacks",
            "runtime.completed",
        ):
            assert with_tier.get(key, 0) == without_tier.get(key, 0), key
        assert "runtime.fragment_mismatch" not in with_tier
        assert with_tier["runtime.skipped_static"] == 1
        assert "runtime.skipped_static" not in without_tier

    def test_skipped_attempt_recorded_with_zero_elapsed(self, triangle_db):
        result = run_with_fallback(
            triangle_db, self.UNSAFE, epsilon=0.2, delta=0.2, rng=5
        )
        skipped = result.attempts[0]
        assert skipped.engine == "safe_lifted"
        assert skipped.outcome == "skipped_static"
        assert skipped.elapsed == 0.0


@pytest.mark.slow
class TestAcceptanceScenario:
    """The ISSUE's demo: preflight refusal + deadline -> sampled answer."""

    @pytest.fixture
    def big_db(self):
        # 8 elements, E/2 and S/1, every atom uncertain: 72 uncertain
        # atoms -> 2^72 possible worlds, far over the 2^20 preflight bar.
        rng = make_rng(2026)
        db = random_unreliable_database(
            rng,
            8,
            {"E": 2, "S": 1},
            density=0.4,
            error=Fraction(1, 10),
            uncertain_fraction=1.0,
        )
        assert len(db.uncertain_atoms()) == 72
        return db

    # Non-conjunctive (disjunction of existentials) so the lifted
    # engine refuses too; still existential, so Karp-Luby applies.
    QUERY = "exists x y. E(x, y) & S(y) | exists x. S(x)"

    def test_refused_exact_degrades_to_sampler_within_deadline(self, big_db):
        result = run_with_fallback(
            big_db,
            self.QUERY,
            budget=Budget(deadline=5.0),
            epsilon=0.25,
            delta=0.25,
            rng=11,
        )
        assert result.elapsed < 5.0
        assert result.engine in ("karp_luby", "montecarlo")
        assert result.guarantee == "additive"
        path = [(a.engine, a.outcome) for a in result.attempts]
        assert path[0] == ("safe_lifted", "skipped_static")
        assert path[1] == ("exact", "cost_refused")
        assert path[-1][1] == "ok"
        assert 0.0 <= result.value <= 1.0

    def test_faulted_sampler_degrades_one_step_further(self, big_db):
        with faults.inject({"karp_luby": faults.TimeoutFault()}):
            result = run_with_fallback(
                big_db,
                self.QUERY,
                budget=Budget(deadline=5.0),
                epsilon=0.25,
                delta=0.25,
                rng=11,
            )
        assert result.engine == "montecarlo"
        assert result.guarantee == "additive"
        path = [(a.engine, a.outcome) for a in result.attempts]
        assert ("karp_luby", "budget_exceeded") in path
        assert path[-1] == ("montecarlo", "ok")


class TestRuntimeResult:
    def test_float_conversion(self):
        result = RuntimeResult(
            value=0.25,
            engine="montecarlo",
            guarantee="additive",
            quantity="reliability",
            epsilon=0.1,
            delta=0.1,
            attempts=(),
            elapsed=0.0,
        )
        assert float(result) == 0.25
        assert "epsilon=0.1" in result.describe()
