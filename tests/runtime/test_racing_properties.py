"""Property-based racing tests: arbitrary chains, budgets, fault scripts.

Each Hypothesis example scripts a fault schedule onto the virtual
clock and checks the executor-level invariants that hold for *every*
interleaving, not just the hand-picked ones in ``test_racing.py``:

* the winner is an engine from the requested chain;
* the raced value is bit-identical to the winner's solo sequential
  value under the same rng seed — losers' partial work never leaks;
* no *launched* strictly-stronger engine lost the race by cancellation:
  a stronger contender either fails on its own or wins (tier safety);
* when the race exhausts, the sequential walk under the same failure
  faults exhausts too, engine for engine (exhaustion parity).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.safety import classify_dichotomy
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime import costmodel, faults, racing
from repro.runtime.budget import Budget
from repro.runtime.executor import (
    DEFAULT_CHAIN,
    race_partition,
    run_with_fallback,
)
from repro.util.errors import FallbackExhausted

QUERY = "exists x. exists y. E(x, y) & S(y)"

# QUERY is statically safe, so the dichotomy router trims every race
# chain that contains an exact-tier engine down to its exact-tier
# members before launch; the suppressed engines are logged as
# ``skipped_static`` attempts, never launched.
VERDICT = classify_dichotomy(QUERY)

FAILURE_OUTCOMES = {"cost_refused", "budget_exceeded", "fragment_mismatch"}


def _make_db():
    builder = StructureBuilder(["a", "b", "c"])
    builder.relation("E", 2)
    builder.relation("S", 1)
    builder.add("E", ("a", "b"))
    builder.add("E", ("b", "c"))
    builder.add("S", ("b",))
    mu = {
        Atom("E", ("a", "c")): Fraction(1, 10),
        Atom("E", ("a", "b")): Fraction(1, 4),
        Atom("S", ("a",)): Fraction(1, 3),
        Atom("S", ("b",)): Fraction(1, 5),
    }
    return UnreliableDatabase(builder.build(), mu)


DB = _make_db()


def _rank(engine, quantity="reliability"):
    return racing.GUARANTEE_RANK[costmodel.engine_guarantee(engine, quantity)]


FAULTS = st.one_of(
    st.just(faults.TimeoutFault()),
    st.just(faults.ExceptionFault()),
    st.builds(
        faults.SlowdownFault,
        seconds=st.floats(0.0, 3.0, allow_nan=False).map(lambda s: round(s, 3)),
    ),
)

CHAINS = st.lists(
    st.sampled_from(DEFAULT_CHAIN), min_size=1, max_size=4, unique=True
)

SCRIPTS = st.dictionaries(st.sampled_from(DEFAULT_CHAIN), FAULTS, max_size=4)

OVERLAPS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0])

SEEDS = st.integers(min_value=0, max_value=2**16)

BUDGETS = st.sampled_from([None, "samples"])


def _race(chain, script, overlap, seed, budget_kind):
    budget = Budget(max_samples=500_000) if budget_kind == "samples" else None
    with racing.use_scheduler(faults.VirtualScheduler()):
        with faults.inject(script):
            try:
                return run_with_fallback(
                    DB,
                    QUERY,
                    chain=chain,
                    budget=budget,
                    rng=seed,
                    race=overlap,
                )
            except FallbackExhausted as exc:
                return exc


@settings(max_examples=50, deadline=None, database=None)
@given(
    chain=CHAINS,
    script=SCRIPTS,
    overlap=OVERLAPS,
    seed=SEEDS,
    budget_kind=BUDGETS,
)
def test_race_invariants(chain, script, overlap, seed, budget_kind):
    outcome = _race(tuple(chain), script, overlap, seed, budget_kind)

    # What the dichotomy router actually launches for this safe query.
    race_chain, suppressed = race_partition(
        tuple(chain), VERDICT, "reliability"
    )

    if isinstance(outcome, FallbackExhausted):
        # Exhaustion parity: every *launched* engine failed on its own,
        # so the sequential walk over the same trimmed chain under the
        # same failure faults (slowdowns change timing, never outcomes)
        # must exhaust identically.  Statically suppressed engines show
        # up as skipped_static, never as failures.
        skipped = [a for a in outcome.attempts if a.outcome == "skipped_static"]
        launched = [a for a in outcome.attempts if a.outcome != "skipped_static"]
        assert [a.engine for a in skipped] == [name for name, _ in suppressed]
        assert [a.engine for a in launched] == list(race_chain)
        assert all(a.outcome in FAILURE_OUTCOMES for a in launched)
        hard_faults = {
            name: fault
            for name, fault in script.items()
            if not isinstance(fault, faults.SlowdownFault)
        }
        try:
            with faults.inject(hard_faults):
                run_with_fallback(DB, QUERY, chain=race_chain, rng=seed)
            sequential_attempts = None
        except FallbackExhausted as exc:
            sequential_attempts = [(a.engine, a.outcome) for a in exc.attempts]
        assert sequential_attempts == [
            (a.engine, a.outcome) for a in launched
        ]
        return

    # The winner came from the requested chain.
    assert outcome.engine in chain

    # Tier safety: a launched strictly-stronger engine never loses by
    # cancellation — it either failed on its own or would have won.
    winner_rank = _rank(outcome.engine)
    for attempt in outcome.attempts:
        if attempt.engine != outcome.engine and _rank(attempt.engine) < winner_rank:
            assert attempt.outcome in FAILURE_OUTCOMES

    # Value parity: the raced value is exactly the winner's solo
    # sequential value for the same seed — no loser state leaked in.
    solo = run_with_fallback(DB, QUERY, chain=(outcome.engine,), rng=seed)
    assert outcome.value == solo.value
    assert outcome.guarantee == solo.guarantee
