"""Property-based racing tests: arbitrary chains, budgets, fault scripts.

Each Hypothesis example scripts a fault schedule onto the virtual
clock and checks the executor-level invariants that hold for *every*
interleaving, not just the hand-picked ones in ``test_racing.py``:

* the winner is an engine from the requested chain;
* the raced value is bit-identical to the winner's solo sequential
  value under the same rng seed — losers' partial work never leaks;
* no *launched* strictly-stronger engine lost the race by cancellation:
  a stronger contender either fails on its own or wins (tier safety);
* when the race exhausts, the sequential walk under the same failure
  faults exhausts too, engine for engine (exhaustion parity).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime import costmodel, faults, racing
from repro.runtime.budget import Budget
from repro.runtime.executor import DEFAULT_CHAIN, run_with_fallback
from repro.util.errors import FallbackExhausted

QUERY = "exists x. exists y. E(x, y) & S(y)"

FAILURE_OUTCOMES = {"cost_refused", "budget_exceeded", "fragment_mismatch"}


def _make_db():
    builder = StructureBuilder(["a", "b", "c"])
    builder.relation("E", 2)
    builder.relation("S", 1)
    builder.add("E", ("a", "b"))
    builder.add("E", ("b", "c"))
    builder.add("S", ("b",))
    mu = {
        Atom("E", ("a", "c")): Fraction(1, 10),
        Atom("E", ("a", "b")): Fraction(1, 4),
        Atom("S", ("a",)): Fraction(1, 3),
        Atom("S", ("b",)): Fraction(1, 5),
    }
    return UnreliableDatabase(builder.build(), mu)


DB = _make_db()


def _rank(engine, quantity="reliability"):
    return racing.GUARANTEE_RANK[costmodel.engine_guarantee(engine, quantity)]


FAULTS = st.one_of(
    st.just(faults.TimeoutFault()),
    st.just(faults.ExceptionFault()),
    st.builds(
        faults.SlowdownFault,
        seconds=st.floats(0.0, 3.0, allow_nan=False).map(lambda s: round(s, 3)),
    ),
)

CHAINS = st.lists(
    st.sampled_from(DEFAULT_CHAIN), min_size=1, max_size=4, unique=True
)

SCRIPTS = st.dictionaries(st.sampled_from(DEFAULT_CHAIN), FAULTS, max_size=4)

OVERLAPS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0])

SEEDS = st.integers(min_value=0, max_value=2**16)

BUDGETS = st.sampled_from([None, "samples"])


def _race(chain, script, overlap, seed, budget_kind):
    budget = Budget(max_samples=500_000) if budget_kind == "samples" else None
    with racing.use_scheduler(faults.VirtualScheduler()):
        with faults.inject(script):
            try:
                return run_with_fallback(
                    DB,
                    QUERY,
                    chain=chain,
                    budget=budget,
                    rng=seed,
                    race=overlap,
                )
            except FallbackExhausted as exc:
                return exc


@settings(max_examples=50, deadline=None, database=None)
@given(
    chain=CHAINS,
    script=SCRIPTS,
    overlap=OVERLAPS,
    seed=SEEDS,
    budget_kind=BUDGETS,
)
def test_race_invariants(chain, script, overlap, seed, budget_kind):
    outcome = _race(tuple(chain), script, overlap, seed, budget_kind)

    if isinstance(outcome, FallbackExhausted):
        # Exhaustion parity: every engine failed on its own, so the
        # sequential walk under the same failure faults (slowdowns
        # change timing, never outcomes) must exhaust identically.
        assert [a.engine for a in outcome.attempts] == list(chain)
        assert all(a.outcome in FAILURE_OUTCOMES for a in outcome.attempts)
        hard_faults = {
            name: fault
            for name, fault in script.items()
            if not isinstance(fault, faults.SlowdownFault)
        }
        try:
            with faults.inject(hard_faults):
                run_with_fallback(DB, QUERY, chain=tuple(chain), rng=seed)
            sequential_attempts = None
        except FallbackExhausted as exc:
            sequential_attempts = [(a.engine, a.outcome) for a in exc.attempts]
        assert sequential_attempts == [
            (a.engine, a.outcome) for a in outcome.attempts
        ]
        return

    # The winner came from the requested chain.
    assert outcome.engine in chain

    # Tier safety: a launched strictly-stronger engine never loses by
    # cancellation — it either failed on its own or would have won.
    winner_rank = _rank(outcome.engine)
    for attempt in outcome.attempts:
        if attempt.engine != outcome.engine and _rank(attempt.engine) < winner_rank:
            assert attempt.outcome in FAILURE_OUTCOMES

    # Value parity: the raced value is exactly the winner's solo
    # sequential value for the same seed — no loser state leaked in.
    solo = run_with_fallback(DB, QUERY, chain=(outcome.engine,), rng=seed)
    assert outcome.value == solo.value
    assert outcome.guarantee == solo.guarantee
