"""Property test: degraded answers stay within their stated guarantee.

On small random databases (at most 10 uncertain atoms) the exact value
is cheap to compute directly; fault-inject both exact-guarantee engines
out of the chain and check that the sampling estimate the executor
falls back to lies within its stated additive epsilon of the truth.
The sampling guarantee is probabilistic (holds with probability
``1 - delta``), so seeds are fixed — the test is deterministic replay,
not a statistical assertion.
"""

from fractions import Fraction

import pytest

from repro.logic.evaluator import FOQuery
from repro.reliability.exact import reliability
from repro.runtime import faults
from repro.runtime.executor import run_with_fallback
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

EPSILON = 0.15
DELTA = 0.1

QUERIES = [
    pytest.param(FOQuery("exists x y. E(x, y) & S(y)"), id="existential"),
    pytest.param(FOQuery("E(x, y) | S(x)", ("x", "y")), id="quantifier-free"),
]


def small_db(seed):
    """A random database with at most 10 uncertain atoms."""
    rng = make_rng(seed)
    db = random_unreliable_database(
        rng,
        3,
        {"E": 2, "S": 1},
        density=0.5,
        uncertain_fraction=0.8,
        error_choices=[Fraction(1, 10), Fraction(1, 4), Fraction(1, 3)],
    )
    assert len(db.uncertain_atoms()) <= 10
    return db


@pytest.mark.slow
@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_faulted_exact_estimate_within_stated_epsilon(seed, query):
    db = small_db(seed)
    truth = float(reliability(db, query))
    with faults.inject(
        {
            "safe_lifted": faults.TimeoutFault(),
            "exact": faults.TimeoutFault(),
            "lifted": faults.TimeoutFault(),
        }
    ):
        result = run_with_fallback(
            db, query, epsilon=EPSILON, delta=DELTA, rng=seed + 1000
        )
    # Every exact-tier engine was faulted out (or statically skipped),
    # so this is a sampled answer with an additive guarantee...
    assert result.engine in ("karp_luby", "montecarlo")
    assert result.guarantee == "additive"
    assert result.epsilon == EPSILON
    exact_tier = [
        a
        for a in result.attempts
        if a.engine in ("safe_lifted", "exact", "lifted")
    ]
    assert all(
        a.outcome in ("budget_exceeded", "skipped_static") for a in exact_tier
    )
    assert any(a.outcome == "budget_exceeded" for a in exact_tier)
    # ...and the estimate honours the epsilon it claims.
    assert abs(result.value - truth) <= EPSILON


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_montecarlo_only_chain_also_within_epsilon(seed):
    """Force the weakest engine alone: the bound must still hold."""
    db = small_db(seed)
    query = FOQuery("exists x. E(x, x) | S(x)")
    truth = float(reliability(db, query))
    result = run_with_fallback(
        db,
        query,
        chain=("montecarlo",),
        epsilon=EPSILON,
        delta=DELTA,
        rng=seed + 2000,
    )
    assert result.engine == "montecarlo"
    assert result.guarantee == "additive"
    assert abs(result.value - truth) <= EPSILON
