"""run_update_stream: budgeted, preflighted delta evaluation."""

from fractions import Fraction

import pytest

from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import Budget
from repro.runtime.executor import run_update_stream
from repro.runtime.preflight import delta_update_cost, preflight_delta
from repro.util.errors import CostRefused, QueryError

QUERY = "exists x y. E(x, y) & E(y, x)"


def _db():
    builder = StructureBuilder(range(3))
    builder.relation("E", 2)
    for pair in [(0, 1), (1, 0), (1, 2), (2, 1)]:
        builder.add("E", pair)
    mu = {
        Atom("E", pair): Fraction(1, 8)
        for pair in [(0, 1), (1, 0), (1, 2), (2, 1)]
    }
    return UnreliableDatabase(builder.build(), mu)


class TestRunUpdateStream:
    def test_one_answer_per_update_each_exact(self):
        updates = [
            ("set_mu", Atom("E", (0, 1)), Fraction(1, 3)),
            ("delete", Atom("E", (1, 2))),
            ("insert", Atom("E", (1, 2))),
        ]
        session, answers = run_update_stream(_db(), QUERY, updates)
        assert len(answers) == len(updates)
        assert all(isinstance(a, Fraction) for a in answers)
        # The final answer is the cold answer on the final database.
        assert answers[-1] == truth_probability(session.db, QUERY)

    def test_reliability_quantity(self):
        updates = [("set_mu", Atom("E", (0, 1)), Fraction(1, 2))]
        session, answers = run_update_stream(
            _db(), QUERY, updates, quantity="reliability"
        )
        assert answers[0] == reliability(session.db, QUERY)

    def test_unknown_quantity_refused(self):
        with pytest.raises(QueryError):
            run_update_stream(_db(), QUERY, [], quantity="entropy")

    def test_unknown_op_refused(self):
        with pytest.raises(QueryError):
            run_update_stream(_db(), QUERY, [("upsert", Atom("E", (0, 1)))])

    def test_tight_budget_refuses_up_front(self):
        # Room to compile the diagram once, none for the stream: the
        # preflight refuses before any update is applied.
        size = run_update_stream(_db(), QUERY, [])[0].diagram_size
        updates = [
            ("set_mu", Atom("E", (0, 1)), Fraction(i, 8)) for i in range(1, 8)
        ]
        with pytest.raises(CostRefused):
            run_update_stream(
                _db(), QUERY, updates, budget=Budget(max_worlds=size * 3)
            )

    def test_ample_budget_admits(self):
        updates = [("set_mu", Atom("E", (0, 1)), Fraction(1, 3))]
        _session, answers = run_update_stream(
            _db(), QUERY, updates, budget=Budget(max_worlds=10**6)
        )
        assert len(answers) == 1


class TestPreflight:
    def test_cost_is_nodes_times_updates(self):
        assert delta_update_cost(100, 7) == 700

    def test_within_limit_returns_estimate(self):
        assert preflight_delta(10, 5, Budget(max_worlds=50)) == 50

    def test_over_limit_raises_with_numbers(self):
        with pytest.raises(CostRefused) as excinfo:
            preflight_delta(10, 6, Budget(max_worlds=50))
        assert excinfo.value.estimate == 60
        assert excinfo.value.limit == 50

    def test_ambient_budget_caps_unbudgeted_streams(self):
        # Without an explicit budget the ambient default's world limit
        # applies: even delta streams cannot grow without bound.
        with pytest.raises(CostRefused):
            preflight_delta(10**6, 10**6)
