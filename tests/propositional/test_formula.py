"""Tests for propositional literals, clauses, DNF and CNF."""

import pytest

from repro.propositional.formula import CNF, DNF, Clause, Literal, neg_lit, pos
from repro.util.errors import QueryError


class TestLiteral:
    def test_negate(self):
        literal = pos("a")
        assert literal.negate() == neg_lit("a")
        assert literal.negate().negate() == literal

    def test_satisfied_by(self):
        assert pos("a").satisfied_by({"a": True})
        assert not pos("a").satisfied_by({"a": False})
        assert neg_lit("a").satisfied_by({"a": False})


class TestClause:
    def test_deduplicates_literals(self):
        clause = Clause([pos("a"), pos("a"), pos("b")])
        assert len(clause) == 2

    def test_contradictory_detection(self):
        clause = Clause([pos("a"), neg_lit("a")])
        assert clause.contradictory
        assert not clause.satisfied_by({"a": True})

    def test_satisfied_by_conjunctive_reading(self):
        clause = Clause([pos("a"), neg_lit("b")])
        assert clause.satisfied_by({"a": True, "b": False})
        assert not clause.satisfied_by({"a": True, "b": True})

    def test_restrict_satisfying_value(self):
        clause = Clause([pos("a"), neg_lit("b")])
        restricted = clause.restrict("a", True)
        assert restricted is not None
        assert set(restricted.variables) == {"b"}

    def test_restrict_conflicting_value_kills(self):
        clause = Clause([pos("a")])
        assert clause.restrict("a", False) is None

    def test_restrict_absent_variable_is_identity(self):
        clause = Clause([pos("a")])
        assert clause.restrict("z", True) is clause

    def test_polarity_lookup(self):
        clause = Clause([neg_lit("b")])
        assert clause.polarity("b") is False
        with pytest.raises(QueryError):
            clause.polarity("missing")

    def test_empty_clause_always_true(self):
        assert Clause([]).satisfied_by({})


class TestDNF:
    def test_drops_contradictory_clauses(self):
        dnf = DNF([Clause([pos("a"), neg_lit("a")]), Clause([pos("b")])])
        assert len(dnf) == 1

    def test_deduplicates_clauses(self):
        dnf = DNF([Clause([pos("a")]), Clause([pos("a")])])
        assert len(dnf) == 1

    def test_true_false_constants(self):
        assert DNF.false().is_false()
        assert DNF.true().is_true()
        assert not DNF.of([pos("a")]).is_true()

    def test_satisfied_by(self):
        dnf = DNF.of([pos("a"), pos("b")], [neg_lit("c")])
        assert dnf.satisfied_by({"a": True, "b": True, "c": True})
        assert dnf.satisfied_by({"a": False, "b": False, "c": False})
        assert not dnf.satisfied_by({"a": True, "b": False, "c": True})

    def test_satisfied_count(self):
        dnf = DNF.of([pos("a")], [pos("b")], [pos("a"), pos("b")])
        assert dnf.satisfied_count({"a": True, "b": True}) == 3
        assert dnf.satisfied_count({"a": True, "b": False}) == 1

    def test_width(self):
        dnf = DNF.of([pos("a")], [pos("b"), pos("c"), neg_lit("d")])
        assert dnf.width == 3
        assert DNF.false().width == 0

    def test_restrict(self):
        dnf = DNF.of([pos("a"), pos("b")], [neg_lit("a")])
        on_true = dnf.restrict("a", True)
        assert len(on_true) == 1  # second clause dies
        on_false = dnf.restrict("a", False)
        assert on_false.is_true()  # second clause becomes empty

    def test_or_and_composition(self):
        left = DNF.of([pos("a")])
        right = DNF.of([pos("b")])
        union = left.or_with(right)
        assert len(union) == 2
        conj = left.and_with(right)
        assert len(conj) == 1
        assert set(conj.clauses[0].variables) == {"a", "b"}

    def test_and_with_kills_contradictions(self):
        left = DNF.of([pos("a")])
        right = DNF.of([neg_lit("a")])
        assert left.and_with(right).is_false()

    def test_equality_is_semantic_on_clause_sets(self):
        d1 = DNF.of([pos("a")], [pos("b")])
        d2 = DNF.of([pos("b")], [pos("a")])
        assert d1 == d2
        assert hash(d1) == hash(d2)


class TestCNF:
    def test_satisfied_by_disjunctive_clauses(self):
        cnf = CNF.of([pos("a"), pos("b")], [pos("c")])
        assert cnf.satisfied_by({"a": False, "b": True, "c": True})
        assert not cnf.satisfied_by({"a": False, "b": False, "c": True})

    def test_negation_dnf(self):
        cnf = CNF.of([pos("a"), pos("b")])
        negated = cnf.negation_dnf()
        # ~(a | b) == ~a & ~b
        assert negated.satisfied_by({"a": False, "b": False})
        assert not negated.satisfied_by({"a": True, "b": False})

    def test_to_dnf_equivalent(self):
        from itertools import product

        cnf = CNF.of([pos("a"), pos("b")], [neg_lit("b"), pos("c")])
        dnf = cnf.to_dnf()
        for values in product((False, True), repeat=3):
            assignment = dict(zip(("a", "b", "c"), values))
            assert cnf.satisfied_by(assignment) == dnf.satisfied_by(assignment)
