"""Tests for the Theorem 5.3 bit-vector reduction Prob-kDNF -> #DNF."""

from fractions import Fraction
from itertools import product

import pytest

from repro.propositional.bitvector import (
    bitvector_reduction,
    dnf_geq,
    dnf_less_than,
    probability_via_bitvector,
)
from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, pos
from repro.util.errors import ProbabilityError
from repro.util.rng import make_rng
from repro.workloads.random_dnf import random_kdnf, random_probabilities


def assignments(bits):
    for values in product((False, True), repeat=len(bits)):
        yield dict(zip(bits, values)), sum(
            (1 << (len(bits) - 1 - i)) for i, v in enumerate(values) if v
        )


BITS3 = ("y2", "y1", "y0")


class TestComparatorDNFs:
    @pytest.mark.parametrize("bound", range(0, 9))
    def test_less_than_semantics(self, bound):
        dnf = dnf_less_than(BITS3, bound)
        for assignment, value in assignments(BITS3):
            assert dnf.satisfied_by(assignment) == (value < bound), (
                bound,
                value,
            )

    @pytest.mark.parametrize("bound", range(0, 9))
    def test_geq_semantics(self, bound):
        dnf = dnf_geq(BITS3, bound)
        for assignment, value in assignments(BITS3):
            assert dnf.satisfied_by(assignment) == (value >= bound), (
                bound,
                value,
            )

    def test_complementary(self):
        for bound in range(9):
            lt = dnf_less_than(BITS3, bound)
            geq = dnf_geq(BITS3, bound)
            for assignment, _value in assignments(BITS3):
                assert lt.satisfied_by(assignment) != geq.satisfied_by(
                    assignment
                )

    def test_quadratic_size(self):
        bits = tuple(f"y{i}" for i in range(12))
        dnf = dnf_less_than(bits, (1 << 12) - 1)
        assert len(dnf) <= 12
        assert dnf.width <= 12


class TestReduction:
    def test_block_structure(self):
        dnf = DNF.of([pos("a")])
        instance = bitvector_reduction(dnf, {"a": Fraction(2, 5)})
        # q = 5 needs 3 bits.
        assert len(instance.bit_variables) == 3
        assert instance.legal_total == 5
        assert instance.total == 8
        assert instance.illegal_total == 3

    def test_requires_fractions(self):
        dnf = DNF.of([pos("a")])
        with pytest.raises(ProbabilityError):
            bitvector_reduction(dnf, {"a": 0.4})

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_pipeline_matches_direct_probability(self, seed):
        rng = make_rng(seed)
        dnf = random_kdnf(rng, variables=4, clauses=3, width=2)
        probs = random_probabilities(rng, dnf, denominator=6)
        via_reduction = probability_via_bitvector(dnf, probs)
        direct = probability_exact(dnf, probs)
        assert via_reduction == direct

    def test_dyadic_probabilities_no_illegal_assignments(self):
        dnf = DNF.of([pos("a"), pos("b")])
        probs = {"a": Fraction(1, 4), "b": Fraction(3, 4)}
        instance = bitvector_reduction(dnf, probs)
        # Denominators 4 need 3 bits (len(4) = 3), so illegal values exist
        # above 4; but with q = 4 and 3 bits there are 2^3 - 4 = 4 illegal
        # per block.
        assert instance.legal_total == 16
        via_reduction = probability_via_bitvector(dnf, probs)
        assert via_reduction == Fraction(3, 16)

    def test_extreme_probabilities(self):
        dnf = DNF.of([pos("a"), pos("b")])
        probs = {"a": Fraction(0), "b": Fraction(1, 2)}
        assert probability_via_bitvector(dnf, probs) == 0
        probs = {"a": Fraction(1), "b": Fraction(1)}
        assert probability_via_bitvector(dnf, probs) == 1

    def test_constants_short_circuit(self):
        assert probability_via_bitvector(DNF.true(), {}) == 1
        assert probability_via_bitvector(DNF.false(), {}) == 0

    def test_sampled_pipeline_close(self):
        rng = make_rng(77)
        dnf = random_kdnf(rng, variables=4, clauses=3, width=2)
        probs = random_probabilities(rng, dnf, denominator=4)
        exact = probability_exact(dnf, probs)
        sampled = probability_via_bitvector(
            dnf, probs, epsilon=0.05, delta=0.05, rng=rng
        )
        assert abs(float(sampled) - float(exact)) <= 0.1

    def test_sampled_pipeline_needs_all_parameters(self):
        dnf = DNF.of([pos("a")])
        with pytest.raises(ProbabilityError):
            probability_via_bitvector(
                dnf, {"a": Fraction(1, 2)}, epsilon=0.1
            )
