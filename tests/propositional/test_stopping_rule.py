"""Tests for the DKLR stopping-rule estimator."""

from fractions import Fraction

import pytest

from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, Literal, pos
from repro.propositional.karp_luby import karp_luby
from repro.propositional.stopping_rule import (
    karp_luby_stopping_rule,
    stopping_rule_threshold,
)
from repro.util.errors import ProbabilityError
from repro.util.rng import make_rng
from repro.workloads.random_dnf import random_kdnf, random_probabilities


class TestThreshold:
    def test_scales_inverse_quadratically(self):
        t1 = stopping_rule_threshold(0.2, 0.1)
        t2 = stopping_rule_threshold(0.1, 0.1)
        assert 3.0 <= t2 / t1 <= 4.5

    def test_invalid_parameters(self):
        for epsilon, delta in ((0, 0.1), (1.2, 0.1), (0.1, 0), (0.1, 1)):
            with pytest.raises(ProbabilityError):
                stopping_rule_threshold(epsilon, delta)


class TestEstimator:
    @pytest.mark.parametrize("seed", range(5))
    def test_relative_error_within_bound(self, seed):
        rng = make_rng(seed)
        dnf = random_kdnf(rng, variables=8, clauses=6, width=3)
        probs = random_probabilities(rng, dnf)
        exact = float(probability_exact(dnf, probs))
        run = karp_luby_stopping_rule(dnf, probs, 0.1, 0.05, rng)
        assert abs(run.estimate - exact) / exact <= 0.1

    def test_constants(self, rng):
        assert karp_luby_stopping_rule(DNF.true(), {}, 0.1, 0.1, rng).estimate == 1.0
        assert karp_luby_stopping_rule(DNF.false(), {}, 0.1, 0.1, rng).estimate == 0.0

    def test_adaptive_budget_beats_fixed_on_fat_unions(self):
        # Many overlapping clauses with high total probability: the
        # fixed Karp-Luby budget scales with m, the stopping rule stops
        # as soon as the (large) mean is pinned down.
        rng = make_rng(9)
        dnf = random_kdnf(rng, variables=10, clauses=40, width=2)
        probs = {v: Fraction(1, 2) for v in dnf.variables}
        adaptive = karp_luby_stopping_rule(dnf, probs, 0.1, 0.05, make_rng(1))
        fixed = karp_luby(dnf, probs, 0.1, 0.05, make_rng(2))
        assert adaptive.samples < fixed.samples
        exact = float(probability_exact(dnf, probs))
        assert abs(adaptive.estimate - exact) / exact <= 0.1

    def test_rare_event_still_within_relative_bound(self):
        variables = [f"v{i}" for i in range(8)]
        dnf = DNF.of([pos(v) for v in variables])
        probs = {v: Fraction(1, 3) for v in variables}
        exact = float(Fraction(1, 3) ** 8)
        run = karp_luby_stopping_rule(dnf, probs, 0.2, 0.1, make_rng(3))
        assert abs(run.estimate - exact) / exact <= 0.2

    def test_sample_cap_enforced(self):
        dnf = DNF.of([pos("a")])
        with pytest.raises(ProbabilityError):
            karp_luby_stopping_rule(
                dnf, {"a": Fraction(1, 2)}, 0.05, 0.05, make_rng(4),
                max_samples=3,
            )

    def test_missing_probability_rejected(self, rng):
        with pytest.raises(ProbabilityError):
            karp_luby_stopping_rule(DNF.of([pos("a")]), {}, 0.1, 0.1, rng)
