"""Tests for the ROBDD compilation engine."""

from fractions import Fraction
from itertools import product

import pytest

from repro.propositional.bdd import (
    ONE,
    ZERO,
    BDD,
    compile_dnf,
    influences_via_bdd,
    probability_via_bdd,
)
from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, Literal, neg_lit, pos
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import make_rng
from repro.workloads.random_dnf import random_kdnf, random_probabilities


class TestConstruction:
    def test_single_variable(self):
        diagram = BDD(["a"])
        node = diagram.var("a")
        assert diagram.evaluate(node, {"a": True})
        assert not diagram.evaluate(node, {"a": False})

    def test_negative_literal(self):
        diagram = BDD(["a"])
        node = diagram.nvar("a")
        assert diagram.evaluate(node, {"a": False})

    def test_hash_consing_shares_nodes(self):
        diagram = BDD(["a"])
        assert diagram.var("a") == diagram.var("a")

    def test_contradiction_reduces_to_zero(self):
        diagram = BDD(["a"])
        assert diagram.conj(diagram.var("a"), diagram.nvar("a")) == ZERO

    def test_tautology_reduces_to_one(self):
        diagram = BDD(["a"])
        assert diagram.disj(diagram.var("a"), diagram.nvar("a")) == ONE

    def test_unknown_variable_rejected(self):
        diagram = BDD(["a"])
        with pytest.raises(QueryError):
            diagram.var("zz")

    def test_duplicate_order_rejected(self):
        with pytest.raises(QueryError):
            BDD(["a", "a"])


class TestCompile:
    @pytest.mark.parametrize("seed", range(6))
    def test_semantics_match_dnf(self, seed):
        rng = make_rng(seed)
        dnf = random_kdnf(rng, variables=6, clauses=5, width=3)
        diagram, root = compile_dnf(dnf)
        variables = diagram.order
        for values in product((False, True), repeat=len(variables)):
            assignment = dict(zip(variables, values))
            assert diagram.evaluate(root, assignment) == dnf.satisfied_by(
                assignment
            ), assignment

    def test_canonicity_equal_functions_equal_roots(self):
        # (a & b) | (a & ~b) == a: both compile to the same node.
        left = DNF.of([pos("a"), pos("b")], [pos("a"), neg_lit("b")])
        diagram, root = compile_dnf(left, order=["a", "b"])
        assert root == diagram.var("a")

    def test_count_models(self):
        dnf = DNF.of([pos("a")], [pos("b")])
        diagram, root = compile_dnf(dnf)
        assert diagram.count_models(root) == 3


class TestProbability:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_shannon_engine(self, seed):
        rng = make_rng(100 + seed)
        dnf = random_kdnf(rng, variables=8, clauses=6, width=3)
        probs = random_probabilities(rng, dnf)
        assert probability_via_bdd(dnf, probs) == probability_exact(dnf, probs)

    def test_constants(self):
        assert probability_via_bdd(DNF.true(), {}) == 1
        assert probability_via_bdd(DNF.false(), {}) == 0

    def test_missing_probability_rejected(self):
        dnf = DNF.of([pos("a")])
        diagram, root = compile_dnf(dnf)
        with pytest.raises(ProbabilityError):
            diagram.probability(root, {})


class TestInfluences:
    def test_disjunction_influences(self):
        dnf = DNF.of([pos("a")], [pos("b")])
        probs = {"a": Fraction(3, 4), "b": Fraction(1, 3)}
        influences = influences_via_bdd(dnf, probs)
        # I(a) = 1 - P(b) = 2/3; I(b) = 1 - P(a) = 1/4.
        assert influences["a"] == Fraction(2, 3)
        assert influences["b"] == Fraction(1, 4)

    def test_negative_literal_negative_influence(self):
        dnf = DNF.of([neg_lit("a")])
        influences = influences_via_bdd(dnf, {"a": Fraction(1, 2)})
        assert influences["a"] == -1

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_conditioning_definition(self, seed):
        rng = make_rng(200 + seed)
        dnf = random_kdnf(rng, variables=6, clauses=4, width=3)
        probs = random_probabilities(rng, dnf)
        influences = influences_via_bdd(dnf, probs)
        for variable in dnf.variables:
            high = probability_exact(dnf.restrict(variable, True), probs)
            low = probability_exact(dnf.restrict(variable, False), probs)
            assert influences[variable] == high - low, variable

    def test_irrelevant_variable_zero_influence(self):
        dnf = DNF.of([pos("a")])
        diagram, root = compile_dnf(dnf, order=["a", "b"])
        influences = diagram.influences(
            root, {"a": Fraction(1, 2), "b": Fraction(1, 2)}
        )
        assert influences["b"] == 0
