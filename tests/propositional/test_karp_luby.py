"""Tests for the Karp–Luby FPTRAS."""

from fractions import Fraction

import pytest

from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, neg_lit, pos
from repro.propositional.karp_luby import (
    karp_luby,
    karp_luby_samples,
    naive_probability_estimate,
    sample_count,
)
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import make_rng
from repro.workloads.random_dnf import random_kdnf, random_probabilities


class TestSampleCount:
    def test_grows_with_clauses_and_precision(self):
        base = sample_count(4, 0.1, 0.05)
        assert sample_count(8, 0.1, 0.05) > base
        assert sample_count(4, 0.05, 0.05) > base
        assert sample_count(4, 0.1, 0.01) > base

    def test_quadratic_in_inverse_epsilon(self):
        t1 = sample_count(1, 0.1, 0.5)
        t2 = sample_count(1, 0.05, 0.5)
        assert 3.5 <= t2 / t1 <= 4.5

    def test_invalid_parameters(self):
        with pytest.raises(ProbabilityError):
            sample_count(3, 0.0, 0.1)
        with pytest.raises(ProbabilityError):
            sample_count(3, 0.1, 1.5)
        with pytest.raises(QueryError):
            sample_count(3, 0.1, 0.1, method="bogus")


class TestKarpLuby:
    def test_constants(self, rng):
        assert karp_luby(DNF.true(), {}, 0.1, 0.1, rng).estimate == 1.0
        assert karp_luby(DNF.false(), {}, 0.1, 0.1, rng).estimate == 0.0

    def test_deterministic_formula(self, rng):
        dnf = DNF.of([pos("a")])
        run = karp_luby(dnf, {"a": Fraction(1)}, 0.2, 0.2, rng)
        assert run.estimate == pytest.approx(1.0)

    def test_zero_weight_short_circuit(self, rng):
        dnf = DNF.of([pos("a")])
        run = karp_luby(dnf, {"a": Fraction(0)}, 0.2, 0.2, rng)
        assert run.estimate == 0.0

    @pytest.mark.parametrize("method", ["coverage", "canonical"])
    @pytest.mark.parametrize("seed", range(4))
    def test_relative_error_within_bound(self, method, seed):
        rng = make_rng(seed)
        dnf = random_kdnf(rng, variables=8, clauses=6, width=3)
        probs = random_probabilities(rng, dnf)
        exact = float(probability_exact(dnf, probs))
        run = karp_luby(dnf, probs, 0.1, 0.05, rng, method=method)
        assert exact > 0
        assert abs(run.estimate - exact) / exact <= 0.1

    def test_estimator_is_unbiased_in_expectation(self):
        # Average many small runs: the grand mean must approach truth much
        # closer than single-run tolerance.
        rng = make_rng(2024)
        dnf = DNF.of([pos("a"), pos("b")], [pos("b"), pos("c")], [neg_lit("a")])
        probs = {"a": Fraction(1, 3), "b": Fraction(1, 2), "c": Fraction(2, 5)}
        exact = float(probability_exact(dnf, probs))
        runs = [
            karp_luby_samples(dnf, probs, 200, rng).estimate for _ in range(50)
        ]
        grand = sum(runs) / len(runs)
        assert abs(grand - exact) < 0.02

    def test_methods_agree(self):
        rng1, rng2 = make_rng(5), make_rng(5)
        dnf = random_kdnf(make_rng(9), variables=6, clauses=5, width=2)
        probs = random_probabilities(make_rng(9), dnf)
        cov = karp_luby_samples(dnf, probs, 4000, rng1, "coverage").estimate
        can = karp_luby_samples(dnf, probs, 4000, rng2, "canonical").estimate
        exact = float(probability_exact(dnf, probs))
        assert abs(cov - exact) < 0.05
        assert abs(can - exact) < 0.05

    def test_rare_event_still_relatively_accurate(self):
        # A conjunction of 10 literals at p = 1/4: probability ~1e-6.
        # Naive MC at the same budget sees zero hits; Karp-Luby nails it.
        rng = make_rng(7)
        variables = [f"v{i}" for i in range(10)]
        dnf = DNF.of([pos(v) for v in variables])
        probs = {v: Fraction(1, 4) for v in variables}
        exact = float(Fraction(1, 4) ** 10)
        run = karp_luby_samples(dnf, probs, 2000, rng)
        assert abs(run.estimate - exact) / exact < 0.05
        naive = naive_probability_estimate(dnf, probs, 2000, make_rng(8))
        assert naive == 0.0  # the baseline fails completely

    def test_missing_probability_raises(self, rng):
        with pytest.raises(ProbabilityError):
            karp_luby(DNF.of([pos("a")]), {}, 0.1, 0.1, rng)

    def test_zero_samples_rejected(self, rng):
        with pytest.raises(ProbabilityError):
            karp_luby_samples(DNF.of([pos("a")]), {"a": 0.5}, 0, rng)

    def test_estimate_clamped_to_one(self):
        rng = make_rng(3)
        dnf = DNF.of([pos("a")], [neg_lit("a")])
        run = karp_luby_samples(dnf, {"a": Fraction(1, 2)}, 50, rng)
        assert run.estimate <= 1.0
        assert run.estimate == pytest.approx(1.0)


class TestNaiveBaseline:
    def test_matches_exact_on_easy_formula(self):
        rng = make_rng(11)
        dnf = DNF.of([pos("a")], [pos("b")])
        probs = {"a": Fraction(1, 2), "b": Fraction(1, 2)}
        estimate = naive_probability_estimate(dnf, probs, 20000, rng)
        assert abs(estimate - 0.75) < 0.02

    def test_zero_samples_rejected(self, rng):
        with pytest.raises(ProbabilityError):
            naive_probability_estimate(DNF.true(), {}, 0, rng)
