"""Tests for exact weighted model counting."""

from fractions import Fraction

import pytest

from repro.propositional.counting import (
    count_models,
    probability_enumerate,
    probability_exact,
)
from repro.propositional.formula import DNF, Clause, neg_lit, pos
from repro.util.errors import ProbabilityError
from repro.util.rng import make_rng
from repro.workloads.random_dnf import random_kdnf, random_probabilities

HALF = Fraction(1, 2)


def uniform(dnf):
    return {v: HALF for v in dnf.variables}


class TestProbabilityExact:
    def test_single_positive_literal(self):
        dnf = DNF.of([pos("a")])
        assert probability_exact(dnf, {"a": Fraction(3, 10)}) == Fraction(3, 10)

    def test_single_negative_literal(self):
        dnf = DNF.of([neg_lit("a")])
        assert probability_exact(dnf, {"a": Fraction(3, 10)}) == Fraction(7, 10)

    def test_conjunction_multiplies(self):
        dnf = DNF.of([pos("a"), pos("b")])
        probs = {"a": Fraction(1, 2), "b": Fraction(1, 3)}
        assert probability_exact(dnf, probs) == Fraction(1, 6)

    def test_disjoint_union_inclusion_exclusion(self):
        dnf = DNF.of([pos("a")], [pos("b")])
        probs = {"a": Fraction(1, 2), "b": Fraction(1, 2)}
        assert probability_exact(dnf, probs) == Fraction(3, 4)

    def test_tautology(self):
        dnf = DNF.of([pos("a")], [neg_lit("a")])
        assert probability_exact(dnf, {"a": Fraction(1, 7)}) == 1

    def test_constants(self):
        assert probability_exact(DNF.true(), {}) == 1
        assert probability_exact(DNF.false(), {}) == 0

    def test_missing_probability_raises(self):
        dnf = DNF.of([pos("a")])
        with pytest.raises(ProbabilityError):
            probability_exact(dnf, {})

    def test_out_of_range_probability_raises(self):
        dnf = DNF.of([pos("a")])
        with pytest.raises(ProbabilityError):
            probability_exact(dnf, {"a": Fraction(3, 2)})

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_enumeration_on_random_formulas(self, seed):
        rng = make_rng(seed)
        dnf = random_kdnf(rng, variables=7, clauses=5, width=3)
        probs = random_probabilities(rng, dnf)
        assert probability_exact(dnf, probs) == probability_enumerate(dnf, probs)

    def test_component_factoring_path(self):
        # Two variable-disjoint blocks force the component branch.
        dnf = DNF.of([pos("a"), pos("b")], [pos("c"), pos("d")])
        probs = {v: HALF for v in "abcd"}
        expected = 1 - (1 - Fraction(1, 4)) ** 2
        assert probability_exact(dnf, probs) == expected


class TestCountModels:
    def test_known_counts(self):
        dnf = DNF.of([pos("a")], [pos("b")])
        # a | b over 2 variables: 3 models.
        assert count_models(dnf) == 3

    def test_extra_variables_scale(self):
        dnf = DNF.of([pos("a")])
        assert count_models(dnf, variables=3) == 4

    def test_too_few_variables_rejected(self):
        dnf = DNF.of([pos("a"), pos("b")])
        with pytest.raises(ProbabilityError):
            count_models(dnf, variables=1)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce(self, seed):
        from itertools import product

        rng = make_rng(100 + seed)
        dnf = random_kdnf(rng, variables=6, clauses=4, width=2)
        variables = sorted(dnf.variables, key=repr)
        brute = 0
        for values in product((False, True), repeat=len(variables)):
            if dnf.satisfied_by(dict(zip(variables, values))):
                brute += 1
        assert count_models(dnf) == brute
