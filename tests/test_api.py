"""Tests for the top-level public API and the README quickstart."""

import random
from fractions import Fraction

import repro
from repro import (
    Atom,
    FOQuery,
    StructureBuilder,
    UnreliableDatabase,
    reliability,
    reliability_additive,
)


class TestPublicSurface:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestQuickstart:
    def test_docstring_example_runs(self):
        builder = StructureBuilder(["a", "b", "c"])
        builder.relation("E", 2).add("E", ("a", "b")).add("E", ("b", "c"))
        structure = builder.build()
        db = UnreliableDatabase(structure, {Atom("E", ("a", "c")): "1/10"})

        query = FOQuery("exists x y. E(x, y)")
        exact = reliability(db, query)
        assert exact == 1  # certain edges guarantee the sentence

        rng = random.Random(0)
        estimate = reliability_additive(db, query, 0.05, 0.05, rng)
        assert abs(estimate.value - float(exact)) <= 0.05

    def test_string_queries_work_end_to_end(self):
        builder = StructureBuilder([1, 2])
        builder.relation("P", 1).add("P", (1,))
        db = UnreliableDatabase(
            builder.build(), {Atom("P", (1,)): Fraction(1, 4)}
        )
        assert reliability(db, "exists x. P(x)") == Fraction(3, 4)
