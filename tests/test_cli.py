"""Tests for the command-line interface and database file round-trip."""

from fractions import Fraction

import pytest

from repro.cli import main
from repro.relational.atoms import Atom
from repro.relational.encoding import (
    decode_error_function,
    decode_unreliable_database,
    encode_unreliable_database,
)
from repro.reliability.unreliable import UnreliableDatabase


@pytest.fixture
def db_file(tmp_path, triangle_db):
    path = tmp_path / "db.txt"
    path.write_text(encode_unreliable_database(triangle_db))
    return str(path)


class TestEncodingRoundTrip:
    def test_full_round_trip(self, triangle_db):
        text = encode_unreliable_database(triangle_db)
        decoded = decode_unreliable_database(text)
        assert decoded.structure == triangle_db.structure
        assert decoded.error_table() == triangle_db.error_table()

    def test_error_lines_parse(self):
        text = "error E 1/4 'a' 'b'\nerror S 1/3 'a'\n"
        mu = decode_error_function(text)
        assert mu[Atom("E", ("a", "b"))] == Fraction(1, 4)
        assert mu[Atom("S", ("a",))] == Fraction(1, 3)

    def test_comments_skipped(self):
        assert decode_error_function("# nothing\n") == {}


class TestComputeCommand:
    def test_exact_reliability(self, db_file, capsys):
        code = main(["compute", db_file, "exists x y. E(x, y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reliability = 1 " in out

    def test_with_free_order_and_method(self, db_file, capsys):
        code = main(
            ["compute", db_file, "E(x, y)", "--free", "x", "y", "--method", "qf"]
        )
        assert code == 0
        assert "reliability" in capsys.readouterr().out

    def test_expected_error_flag(self, db_file, capsys):
        code = main(
            ["compute", db_file, "exists x. S(x) & ~E(x, x)", "--expected-error"]
        )
        assert code == 0
        assert "expected_error" in capsys.readouterr().out

    def test_bad_query_reports_error(self, db_file, capsys):
        code = main(["compute", db_file, "E(x,"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reports_error(self, capsys):
        code = main(["compute", "/no/such/file", "exists x. S(x)"])
        assert code == 2


class TestEstimateCommand:
    def test_karp_luby(self, db_file, capsys):
        code = main(
            [
                "estimate",
                db_file,
                "exists x y. E(x, y) & S(y)",
                "--epsilon",
                "0.1",
                "--delta",
                "0.1",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        assert "reliability ~" in capsys.readouterr().out

    def test_padding(self, db_file, capsys):
        code = main(
            [
                "estimate",
                db_file,
                "exists x. E(x, x)",
                "--estimator",
                "padding",
                "--epsilon",
                "0.2",
                "--delta",
                "0.2",
            ]
        )
        assert code == 0
        assert "reliability ~" in capsys.readouterr().out

    def test_hamming(self, db_file, capsys):
        code = main(
            [
                "estimate",
                db_file,
                "E(x, y)",
                "--free",
                "x",
                "y",
                "--estimator",
                "hamming",
                "--epsilon",
                "0.1",
                "--delta",
                "0.2",
            ]
        )
        assert code == 0
        assert "reliability ~" in capsys.readouterr().out


class TestInspectCommand:
    def test_summary(self, db_file, capsys):
        code = main(["inspect", db_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "universe: 3 elements" in out
        assert "uncertain atoms: 4" in out

    def test_with_query_classification(self, db_file, capsys):
        code = main(
            ["inspect", db_file, "--query", "exists x y. E(x, y) & S(y)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "conjunctive" in out


class TestAnalyzeCommand:
    def test_exact_path(self, db_file, capsys):
        code = main(["analyze", db_file, "exists x y. E(x, y) & S(y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine:" in out
        assert "[exact]" in out

    def test_fragment_reported(self, db_file, capsys):
        code = main(["analyze", db_file, "E(x, y)", "--free", "x", "y"])
        assert code == 0
        assert "quantifier-free" in capsys.readouterr().out
