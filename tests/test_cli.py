"""Tests for the command-line interface and database file round-trip."""

from fractions import Fraction

import pytest

from repro.cli import main
from repro.relational.atoms import Atom
from repro.relational.encoding import (
    decode_error_function,
    decode_unreliable_database,
    encode_unreliable_database,
)
from repro.reliability.unreliable import UnreliableDatabase


@pytest.fixture
def db_file(tmp_path, triangle_db):
    path = tmp_path / "db.txt"
    path.write_text(encode_unreliable_database(triangle_db))
    return str(path)


class TestEncodingRoundTrip:
    def test_full_round_trip(self, triangle_db):
        text = encode_unreliable_database(triangle_db)
        decoded = decode_unreliable_database(text)
        assert decoded.structure == triangle_db.structure
        assert decoded.error_table() == triangle_db.error_table()

    def test_error_lines_parse(self):
        text = "error E 1/4 'a' 'b'\nerror S 1/3 'a'\n"
        mu = decode_error_function(text)
        assert mu[Atom("E", ("a", "b"))] == Fraction(1, 4)
        assert mu[Atom("S", ("a",))] == Fraction(1, 3)

    def test_comments_skipped(self):
        assert decode_error_function("# nothing\n") == {}


class TestComputeCommand:
    def test_exact_reliability(self, db_file, capsys):
        code = main(["compute", db_file, "exists x y. E(x, y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reliability = 1 " in out

    def test_with_free_order_and_method(self, db_file, capsys):
        code = main(
            ["compute", db_file, "E(x, y)", "--free", "x", "y", "--method", "qf"]
        )
        assert code == 0
        assert "reliability" in capsys.readouterr().out

    def test_expected_error_flag(self, db_file, capsys):
        code = main(
            ["compute", db_file, "exists x. S(x) & ~E(x, x)", "--expected-error"]
        )
        assert code == 0
        assert "expected_error" in capsys.readouterr().out

    def test_bad_query_reports_error(self, db_file, capsys):
        code = main(["compute", db_file, "E(x,"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reports_error(self, capsys):
        code = main(["compute", "/no/such/file", "exists x. S(x)"])
        assert code == 2


class TestEstimateCommand:
    def test_karp_luby(self, db_file, capsys):
        code = main(
            [
                "estimate",
                db_file,
                "exists x y. E(x, y) & S(y)",
                "--epsilon",
                "0.1",
                "--delta",
                "0.1",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        assert "reliability ~" in capsys.readouterr().out

    def test_padding(self, db_file, capsys):
        code = main(
            [
                "estimate",
                db_file,
                "exists x. E(x, x)",
                "--estimator",
                "padding",
                "--epsilon",
                "0.2",
                "--delta",
                "0.2",
            ]
        )
        assert code == 0
        assert "reliability ~" in capsys.readouterr().out

    def test_hamming(self, db_file, capsys):
        code = main(
            [
                "estimate",
                db_file,
                "E(x, y)",
                "--free",
                "x",
                "y",
                "--estimator",
                "hamming",
                "--epsilon",
                "0.1",
                "--delta",
                "0.2",
            ]
        )
        assert code == 0
        assert "reliability ~" in capsys.readouterr().out


class TestInspectCommand:
    def test_summary(self, db_file, capsys):
        code = main(["inspect", db_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "universe: 3 elements" in out
        assert "uncertain atoms: 4" in out

    def test_with_query_classification(self, db_file, capsys):
        code = main(
            ["inspect", db_file, "--query", "exists x y. E(x, y) & S(y)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "conjunctive" in out


class TestAnalyzeCommand:
    def test_exact_path(self, db_file, capsys):
        code = main(["analyze", db_file, "exists x y. E(x, y) & S(y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine:" in out
        assert "[exact]" in out

    def test_fragment_reported(self, db_file, capsys):
        code = main(["analyze", db_file, "E(x, y)", "--free", "x", "y"])
        assert code == 0
        assert "quantifier-free" in capsys.readouterr().out

    def test_explain_dichotomy_safe_prints_hierarchy_tree(
        self, db_file, capsys
    ):
        code = main(
            [
                "analyze",
                db_file,
                "exists x y. E(x, y) & S(y)",
                "--explain-dichotomy",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "safe: hierarchical self-join-free Boolean CQ" in out
        assert "hierarchy tree:" in out
        assert "project" in out

    def test_explain_dichotomy_unsafe_prints_witness(self, db_file, capsys):
        code = main(
            [
                "analyze",
                db_file,
                "exists x y. E(x, y) & E(y, x)",
                "--explain-dichotomy",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unsafe: relation E occurs in two atoms" in out
        assert "offending atoms:" in out
        assert "falls through to the general engine chain" in out

    def test_without_flag_no_dichotomy_section(self, db_file, capsys):
        code = main(["analyze", db_file, "exists x y. E(x, y) & S(y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hierarchy tree:" not in out


class TestErrorReporting:
    """ReproError -> one-line `error: ...` on stderr and exit code 2."""

    def test_malformed_query(self, db_file, capsys):
        code = main(["compute", db_file, "exists x. E(x,"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        err = captured.err
        assert err.startswith("error: ")
        assert err.count("\n") == 1  # one line, no traceback

    def test_mu_out_of_unit_interval(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text(
            "universe 'a' 'b'\n"
            "relation E 2\n"
            "tuple E 'a' 'b'\n"
            "error E 3/2 'a' 'b'\n"
        )
        code = main(["compute", str(bad), "exists x y. E(x, y)"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "3/2" in captured.err

    def test_exceeded_deadline_is_reported_not_raised(self, db_file, capsys):
        # An impossible-to-meet max-cost on a non-degrading subcommand
        # surfaces as a one-line refusal with its dedicated exit code.
        code = main(
            ["compute", db_file, "exists x y. E(x, y)",
             "--method", "worlds", "--max-cost", "2"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "cost refused: " in captured.err
        assert "worlds" in captured.err


class TestRunCommand:
    def test_exact_answers_with_provenance(self, db_file, capsys):
        code = main(["run", db_file, "exists x y. E(x, y) & S(y)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "safe_lifted: ok" in out
        assert "[exact]" in out
        assert "reliability =" in out

    def test_degrades_under_max_cost(self, tmp_path, capsys):
        # 20 uncertain atoms -> 2^20 worlds: exact is refused at a
        # 100k cap, while the Monte-Carlo Hoeffding budget (~29 samples
        # at eps=delta=0.2) fits comfortably.
        from repro.util.rng import make_rng
        from repro.workloads.random_db import random_unreliable_database

        db = random_unreliable_database(
            make_rng(5), 4, {"E": 2, "S": 1}, density=0.5,
            uncertain_fraction=1.0,
        )
        path = tmp_path / "big.txt"
        path.write_text(encode_unreliable_database(db))
        code = main(
            ["run", str(path),
             "exists x y. E(x, y) & S(y) | exists x. S(x)",
             "--max-cost", "100000", "--epsilon", "0.2", "--delta", "0.2",
             "--deadline", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "safe_lifted: skipped_static" in out
        assert "exact: cost_refused" in out
        assert "[additive]" in out

    def test_custom_chain_and_quantity(self, db_file, capsys):
        code = main(
            ["run", db_file, "exists x y. E(x, y)",
             "--engine-chain", "montecarlo",
             "--quantity", "probability",
             "--epsilon", "0.2", "--delta", "0.2", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "probability =" in out
        assert "via montecarlo" in out

    def test_unknown_engine_in_chain_reports_error(self, db_file, capsys):
        code = main(
            ["run", db_file, "exists x y. E(x, y)",
             "--engine-chain", "exact,warp_drive"]
        )
        assert code == 2
        assert "warp_drive" in capsys.readouterr().err

    def test_exhausted_chain_reports_error(self, db_file, capsys):
        # lifted alone cannot answer a k-ary query.
        code = main(
            ["run", db_file, "E(x, y)", "--free", "x", "y",
             "--engine-chain", "lifted"]
        )
        captured = capsys.readouterr()
        assert code == 5
        assert "fallback exhausted: " in captured.err
        assert "lifted" in captured.err

    def test_stats_include_runtime_counters(self, db_file, capsys):
        code = main(
            ["run", db_file, "exists x y. E(x, y)", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime.attempts" in out
        assert "runtime.completed" in out

    def test_profile_prints_span_tree(self, db_file, capsys):
        code = main(
            ["compute", db_file, "exists x y. E(x, y) & S(y)", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- span profile --" in out
        assert "total_s" in out and "self_s" in out

    def test_profile_tees_alongside_trace(self, db_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["compute", db_file, "exists x y. E(x, y) & S(y)",
             "--profile", "--trace", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- span profile --" in out
        # The trace file still receives the span records.
        from repro.obs import read_jsonl

        spans = [e for e in read_jsonl(str(trace)) if e.get("type") == "span"]
        assert spans


class TestBudgetFlags:
    def test_max_cost_caps_samples_too(self, db_file, capsys):
        # The sampler preflights its Hoeffding budget against max-cost.
        code = main(
            ["estimate", db_file, "exists x y. E(x, y)",
             "--estimator", "hamming", "--max-cost", "10"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "cost refused: " in captured.err
        assert "samples" in captured.err

    def test_generous_budget_passes(self, db_file, capsys):
        code = main(
            ["compute", db_file, "exists x y. E(x, y)",
             "--deadline", "30", "--max-cost", "1000000"]
        )
        assert code == 0
        assert "reliability" in capsys.readouterr().out


class TestCalibrationCommands:
    """`calibrate` -> `run/analyze --calibration` round trip."""

    @pytest.fixture(scope="class")
    def calibration_file(self, tmp_path_factory):
        # Class-scoped: the calibration workload runs every engine and
        # is the slow part; the consumers below just read the file.
        path = tmp_path_factory.mktemp("calibration") / "calibration.json"
        code = main(
            ["calibrate", "--out", str(path), "--seed", "3", "--repeats", "1"]
        )
        assert code == 0
        return str(path)

    def test_calibrate_writes_loadable_model(self, calibration_file, capsys):
        import json

        from repro.runtime import costmodel

        payload = json.loads(open(calibration_file).read())
        assert payload["version"] == costmodel.CALIBRATION_VERSION
        model = costmodel.load_calibration(calibration_file)
        assert model.engines, "workload should calibrate at least one engine"

    def test_calibrate_reports_per_engine_fit(self, db_file, tmp_path, capsys):
        path = tmp_path / "cal.json"
        code = main(["calibrate", "--out", str(path), "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibration written to" in out
        assert "observations" in out and "rmse" in out

    def test_run_accepts_calibration(self, db_file, calibration_file, capsys):
        code = main(
            ["run", db_file, "exists x y. E(x, y) & S(y)",
             "--calibration", calibration_file]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reliability =" in out

    def test_analyze_matches_run_selection(
        self, db_file, calibration_file, capsys
    ):
        query = "exists x y. E(x, y) & S(y)"
        assert main(
            ["analyze", db_file, query, "--calibration", calibration_file]
        ) == 0
        analyze_out = capsys.readouterr().out
        assert "run would select:" in analyze_out
        recommended = analyze_out.split("run would select:")[1].split()[0]
        assert main(
            ["run", db_file, query, "--calibration", calibration_file]
        ) == 0
        run_out = capsys.readouterr().out
        assert f"via {recommended}" in run_out

    def test_run_stats_show_costmodel_metrics(
        self, db_file, calibration_file, capsys
    ):
        code = main(
            ["run", db_file, "exists x y. E(x, y)",
             "--calibration", calibration_file, "--stats"]
        )
        assert code == 0
        assert "costmodel." in capsys.readouterr().out

    def test_corrupt_calibration_degrades_not_crashes(
        self, db_file, tmp_path, capsys
    ):
        path = tmp_path / "broken.json"
        path.write_text("{definitely not json")
        code = main(
            ["run", db_file, "exists x y. E(x, y)",
             "--calibration", str(path), "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reliability =" in out
        assert "costmodel.fallback" in out


class TestServeCommands:
    def test_submit_emits_a_request_line(self, capsys):
        import json

        code = main(
            ["submit", "q1", "exists x y. E(x, y)",
             "--deadline", "5", "--tenant", "alice", "--seed", "7"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["id"] == "q1"
        assert payload["deadline"] == 5.0
        assert payload["tenant"] == "alice"
        assert payload["seed"] == 7

    def test_submit_validates_the_request(self, capsys):
        code = main(
            ["submit", "q1", "exists x y. E(x, y)", "--epsilon", "2.0"]
        )
        assert code == 2
        assert "epsilon" in capsys.readouterr().err

    def test_serve_batch_answers_every_line(self, db_file, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                [
                    json.dumps({"id": "a", "query": "exists x y. E(x, y)"}),
                    "this is not json",
                    json.dumps({"id": "b", "query": "exists x. S(x)",
                                "deadlien": 1.0}),
                    json.dumps({"id": "c", "query": "exists x. S(x)",
                                "tenant": "t2", "seed": 3}),
                ]
            )
            + "\n"
        )
        code = main(
            ["serve", db_file, "--input", str(requests), "--pool", "2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert len(lines) == 4  # one response per input line
        by_id = {line["id"]: line for line in lines}
        assert by_id[None]["code"] == "invalid"
        assert by_id["b"]["code"] == "invalid"
        assert "deadlien" in by_id["b"]["detail"]
        assert by_id["a"]["code"] == "ok" and by_id["a"]["engine"]
        assert by_id["c"]["code"] == "ok" and by_id["c"]["tenant"] == "t2"
        assert "served 4 request(s): 2 ok" in captured.err

    def test_serve_stats_include_serve_counters(self, db_file, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"id": "a", "query": "exists x y. E(x, y)"}) + "\n"
        )
        code = main(
            ["serve", db_file, "--input", str(requests), "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve.submitted" in out
        assert "serve.completed" in out
