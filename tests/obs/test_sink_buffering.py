"""Buffered JSONL sink edge cases: exceptions, partial flushes, reuse.

The sink buffers serialised records and writes one joined chunk per
``FLUSH_EVERY`` events; the recorder flushes when a top-level span
closes and ``close()`` drains whatever remains.  These tests pin the
behaviours the benchmark harness depends on: no record is lost when
the traced block raises, the span pool stays healthy across
exceptions, and the registry summary is unaffected by how much of the
trace has reached disk.
"""

import pytest

from repro import obs
from repro.obs.recorder import StatsRecorder
from repro.obs.sink import JsonlSink, read_jsonl


class TestFlushOnClose:
    def test_traced_block_raising_still_flushes_everything(self, tmp_path):
        """Events buffered below FLUSH_EVERY when the block raises must
        reach the file once the recorder is closed."""
        path = str(tmp_path / "raise.jsonl")
        with pytest.raises(RuntimeError):
            with obs.recording(path) as recorder:
                assert recorder is obs.get_recorder()
                for index in range(10):
                    obs.event("progress", step=index)
                raise RuntimeError("mid-run failure")
        events = read_jsonl(path)
        assert len(events) == 10
        assert [event["fields"]["step"] for event in events] == list(range(10))

    def test_span_open_at_raise_is_not_emitted_but_buffer_drains(
        self, tmp_path
    ):
        """A span interrupted by an exception still closes (context
        manager exit), so its record is flushed with the rest."""
        path = str(tmp_path / "span_raise.jsonl")
        with pytest.raises(ValueError):
            with obs.recording(path):
                obs.event("before")
                with obs.span("doomed"):
                    raise ValueError("boom")
        events = read_jsonl(path)
        names = [event["name"] for event in events]
        assert names == ["before", "doomed"]
        assert events[1]["type"] == "span"

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "twice.jsonl")
        sink = JsonlSink(path)
        sink.emit({"n": 1})
        sink.close()
        sink.close()
        assert read_jsonl(path) == [{"n": 1}]


class TestSpanPoolAfterExceptions:
    def test_span_returned_to_pool_after_exception(self):
        recorder = StatsRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("broken"):
                raise RuntimeError("boom")
        # The span object went back to the free list and the depth
        # counter unwound; the next span reuses the pooled object.
        assert len(recorder._span_pool) == 1
        pooled = recorder._span_pool[0]
        assert recorder._span_depth == 0
        with recorder.span("healthy"):
            pass
        histograms = recorder.summary()["histograms"]
        assert histograms["broken.seconds"]["count"] == 1
        assert histograms["healthy.seconds"]["count"] == 1
        assert pooled in recorder._span_pool

    def test_nested_exception_unwinds_all_depths(self):
        recorder = StatsRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("outer"):
                with recorder.span("middle"):
                    with recorder.span("inner"):
                        raise RuntimeError("deep boom")
        assert recorder._span_depth == 0
        assert len(recorder._span_pool) == 3
        # Depth bookkeeping is intact for the next nesting.
        sink_free = recorder.span("again")
        with sink_free:
            assert recorder._span_depth == 1
        assert recorder._span_depth == 0


class TestPartialFlush:
    def test_summary_correct_after_partial_flush(self, tmp_path):
        """Crossing FLUSH_EVERY mid-run writes a prefix of the trace;
        the registry summary still reflects *every* event, and close
        drains the suffix."""
        path = str(tmp_path / "partial.jsonl")
        sink = JsonlSink(path)
        recorder = StatsRecorder(sink=sink)
        total = JsonlSink.FLUSH_EVERY + 37
        previous = obs.set_recorder(recorder)
        try:
            for index in range(total):
                obs.event("tick", i=index)
        finally:
            obs.set_recorder(previous)
        # One automatic flush has happened; the file holds exactly the
        # first batch while 37 records sit in the buffer.
        on_disk = read_jsonl(path)
        assert len(on_disk) == JsonlSink.FLUSH_EVERY
        assert recorder.summary()["counters"]["tick.events"] == total
        recorder.close()
        assert len(read_jsonl(path)) == total

    def test_top_level_span_close_flushes_buffer(self, tmp_path):
        """The recorder drains buffered records whenever a depth-0 span
        closes, so the file is complete between engine calls."""
        path = str(tmp_path / "toplevel.jsonl")
        recorder = StatsRecorder(sink=JsonlSink(path))
        with recorder.span("engine.call"):
            recorder.event("inside", x=1)
        # No close() yet — the top-level span exit flushed.
        events = read_jsonl(path)
        assert [event["name"] for event in events] == [
            "inside",
            "engine.call",
        ]
        recorder.close()

    def test_interleaved_flush_and_emit_lose_nothing(self, tmp_path):
        """Explicit flush between emits must not drop buffered records."""
        path = str(tmp_path / "interleave.jsonl")
        sink = JsonlSink(path)
        for index in range(10):
            sink.emit({"n": index})
            if index % 3 == 0:
                sink.flush()
        sink.close()
        assert [event["n"] for event in read_jsonl(path)] == list(range(10))
