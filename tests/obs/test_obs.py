"""Core semantics of the repro.obs instrumentation layer.

Covers the registry instruments (counter / gauge / histogram), span
nesting and timing via an injected deterministic clock, the JSONL sink
round-trip, and the active-recorder plumbing (NullRecorder default,
``use`` scoping, restore-on-exit).
"""

import json

import pytest

from repro import obs
from repro.obs.recorder import NullRecorder, StatsRecorder
from repro.obs.registry import Registry
from repro.obs.sink import JsonlSink, ListSink, read_jsonl


class TestRegistry:
    def test_counter_starts_at_zero_and_accumulates(self):
        registry = Registry()
        counter = registry.counter("a.b")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert registry.counter("a.b").value == 42

    def test_instruments_created_on_demand_and_cached(self):
        registry = Registry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_kind_collision_rejected(self):
        registry = Registry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name")

    def test_gauge_last_value_wins(self):
        registry = Registry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7)
        assert registry.gauge("g").value == 7

    def test_histogram_summary(self):
        registry = Registry()
        histogram = registry.histogram("h")
        assert histogram.mean is None
        for value in (1, 2, 3):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_snapshot_shape_and_reset(self):
        registry = Registry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 5}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class FakeClock:
    """A controllable monotonic clock for deterministic span timing."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpans:
    def test_span_duration_recorded_in_histogram(self):
        clock = FakeClock()
        recorder = StatsRecorder(clock=clock)
        with recorder.span("work"):
            clock.advance(0.25)
        stats = recorder.summary()["histograms"]["work.seconds"]
        assert stats["count"] == 1
        assert stats["total"] == pytest.approx(0.25)

    def test_nested_spans_carry_depth_and_emit_inner_first(self):
        clock = FakeClock()
        sink = ListSink()
        recorder = StatsRecorder(sink=sink, clock=clock)
        with recorder.span("outer", kind="test"):
            clock.advance(1.0)
            with recorder.span("inner"):
                clock.advance(0.5)
        names = [event["name"] for event in sink.events]
        assert names == ["inner", "outer"]
        inner, outer = sink.events
        assert inner["depth"] == 1
        assert outer["depth"] == 0
        assert inner["dur_s"] == pytest.approx(0.5)
        assert outer["dur_s"] == pytest.approx(1.5)
        assert outer["attrs"] == {"kind": "test"}

    def test_span_stack_unwinds_on_exception(self):
        recorder = StatsRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("broken"):
                raise RuntimeError("boom")
        assert recorder._span_depth == 0
        assert recorder.summary()["histograms"]["broken.seconds"]["count"] == 1

    def test_event_counts_even_without_sink(self):
        recorder = StatsRecorder()
        recorder.event("batch", samples=10, estimate=0.5)
        assert recorder.summary()["counters"]["batch.events"] == 1


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        clock = FakeClock()
        recorder = StatsRecorder(sink=JsonlSink(path), clock=clock)
        recorder.event("mc.batch", samples=3, estimate=0.75)
        with recorder.span("outer"):
            clock.advance(0.125)
        recorder.close()
        events = read_jsonl(path)
        assert len(events) == 2
        assert events[0]["type"] == "event"
        assert events[0]["name"] == "mc.batch"
        assert events[0]["fields"] == {"samples": 3, "estimate": 0.75}
        assert events[1]["type"] == "span"
        assert events[1]["dur_s"] == pytest.approx(0.125)
        # Every line parses independently — the JSONL contract.
        with open(path) as handle:
            for line in handle:
                json.loads(line)

    def test_jsonl_sink_lazy_open(self, tmp_path):
        path = str(tmp_path / "never.jsonl")
        recorder = StatsRecorder(sink=JsonlSink(path))
        recorder.close()
        assert not (tmp_path / "never.jsonl").exists()

    def test_jsonl_encodes_non_json_values_as_strings(self, tmp_path):
        from fractions import Fraction

        path = str(tmp_path / "frac.jsonl")
        sink = JsonlSink(path)
        sink.emit({"value": Fraction(1, 3)})
        sink.close()
        assert read_jsonl(path) == [{"value": "1/3"}]

    def test_list_sink_by_name(self):
        sink = ListSink()
        sink.emit({"name": "a", "n": 1})
        sink.emit({"name": "b", "n": 2})
        sink.emit({"name": "a", "n": 3})
        assert [event["n"] for event in sink.by_name("a")] == [1, 3]


class TestActiveRecorder:
    def test_default_is_null_and_summary_empty(self):
        assert isinstance(obs.get_recorder(), NullRecorder)
        assert obs.summary() == {}
        assert not obs.enabled()

    def test_null_recorder_calls_are_noops(self):
        obs.inc("anything", 5)
        obs.gauge("g", 1)
        obs.observe("h", 2)
        obs.event("e", x=1)
        with obs.span("s", a=1):
            pass
        assert obs.summary() == {}

    def test_use_scopes_and_restores(self):
        recorder = StatsRecorder()
        before = obs.get_recorder()
        with obs.use(recorder):
            assert obs.get_recorder() is recorder
            assert obs.enabled()
            obs.inc("scoped")
        assert obs.get_recorder() is before
        assert recorder.summary()["counters"]["scoped"] == 1

    def test_use_restores_on_exception(self):
        before = obs.get_recorder()
        with pytest.raises(ValueError):
            with obs.use(StatsRecorder()):
                raise ValueError("boom")
        assert obs.get_recorder() is before

    def test_set_recorder_none_restores_null(self):
        previous = obs.set_recorder(StatsRecorder())
        try:
            assert obs.enabled()
        finally:
            obs.set_recorder(None)
        assert isinstance(obs.get_recorder(), NullRecorder)
        assert previous is obs.get_recorder() or isinstance(
            previous, NullRecorder
        )

    def test_recording_context_manager(self, tmp_path):
        path = str(tmp_path / "rec.jsonl")
        with obs.recording(path) as recorder:
            obs.inc("counted")
            obs.event("point", k=1)
        assert recorder.summary()["counters"]["counted"] == 1
        events = read_jsonl(path)
        assert [event["name"] for event in events] == ["point"]

    def test_module_summary_prefix_filter(self):
        with obs.use(StatsRecorder()):
            obs.inc("serve.submitted", 3)
            obs.inc("runtime.attempts")
            obs.gauge("serve.queue.depth", 2)
            obs.observe("serve.service_seconds", 0.5)
            obs.observe("runtime.run.seconds", 0.1)
            filtered = obs.summary(prefix="serve.")
            full = obs.summary()
        assert set(filtered) == set(full)  # same sections, filtered content
        assert set(filtered["counters"]) == {"serve.submitted"}
        assert set(filtered["gauges"]) == {"serve.queue.depth"}
        assert set(filtered["histograms"]) == {"serve.service_seconds"}
        assert set(full["counters"]) == {"serve.submitted", "runtime.attempts"}

    def test_module_summary_prefix_when_disabled(self):
        assert obs.summary(prefix="serve.") == {}
