"""Concurrency regression tests for the instrumentation layer.

Since the speculative racing executor landed, engines emit
``runtime.race.*`` counters, histogram observations and spans from
multiple worker threads into one shared :class:`StatsRecorder`.  A
bare ``value += amount`` is not atomic in CPython — the interpreter
can switch threads between the load and the store — so an unlocked
registry loses increments under contention.  These tests hammer every
update path from many threads with an aggressive switch interval and
assert nothing is lost.
"""

import sys
import threading

import pytest

from repro import obs
from repro.obs.recorder import StatsRecorder
from repro.obs.registry import Registry
from repro.obs.sink import ListSink

THREADS = 8
PER_THREAD = 20_000


@pytest.fixture
def aggressive_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _run_threads(worker, count=THREADS):
    threads = [threading.Thread(target=worker) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCounterConcurrency:
    def test_no_lost_increments_through_recorder(self, aggressive_switching):
        """The racing-emission shape: many threads, one counter name."""
        recorder = StatsRecorder()

        def worker():
            for _ in range(PER_THREAD):
                recorder.inc("runtime.race.launched")

        _run_threads(worker)
        counters = recorder.summary()["counters"]
        assert counters["runtime.race.launched"] == THREADS * PER_THREAD

    def test_no_lost_increments_direct(self, aggressive_switching):
        registry = Registry()
        counter = registry.counter("c")

        def worker():
            for _ in range(PER_THREAD):
                counter.inc()

        _run_threads(worker)
        assert counter.value == THREADS * PER_THREAD

    def test_weighted_increments(self, aggressive_switching):
        recorder = StatsRecorder()

        def worker():
            for _ in range(PER_THREAD // 4):
                recorder.inc("weighted", 3)

        _run_threads(worker)
        expected = THREADS * (PER_THREAD // 4) * 3
        assert recorder.summary()["counters"]["weighted"] == expected


class TestHistogramConcurrency:
    def test_no_lost_observations(self, aggressive_switching):
        recorder = StatsRecorder()

        def worker():
            for _ in range(PER_THREAD // 4):
                recorder.observe("runtime.race.wasted_seconds", 1.0)

        _run_threads(worker)
        stats = recorder.summary()["histograms"][
            "runtime.race.wasted_seconds"
        ]
        expected = THREADS * (PER_THREAD // 4)
        assert stats["count"] == expected
        assert stats["total"] == pytest.approx(float(expected))
        assert stats["min"] == 1.0
        assert stats["max"] == 1.0


class TestInstrumentCreationRace:
    def test_concurrent_creation_yields_one_instrument(
        self, aggressive_switching
    ):
        """All threads racing to create the same names must converge on
        one shared instrument per name (no increments split across
        orphaned twins)."""
        registry = Registry()
        names = [f"race.{i}" for i in range(32)]
        barrier = threading.Barrier(THREADS)

        def worker():
            barrier.wait()
            for name in names:
                registry.counter(name).inc()

        _run_threads(worker)
        for name in names:
            assert registry.counter(name).value == THREADS

    def test_snapshot_during_concurrent_creation(self, aggressive_switching):
        """snapshot() must not blow up while instruments appear."""
        recorder = StatsRecorder()
        stop = threading.Event()

        def creator():
            index = 0
            while not stop.is_set():
                recorder.inc(f"churn.{index % 64}")
                index += 1

        threads = [threading.Thread(target=creator) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                snapshot = recorder.summary()
                assert isinstance(snapshot["counters"], dict)
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestSpanConcurrency:
    def test_spans_from_many_threads(self, aggressive_switching):
        """Per-thread span depth: every span closes, none crash, and the
        duration histogram sees every occurrence."""
        recorder = StatsRecorder(sink=ListSink())
        spans_per_thread = 2_000

        def worker():
            for _ in range(spans_per_thread):
                with recorder.span("race.attempt"):
                    with recorder.span("race.inner"):
                        pass

        _run_threads(worker)
        histograms = recorder.summary()["histograms"]
        expected = THREADS * spans_per_thread
        assert histograms["race.attempt.seconds"]["count"] == expected
        assert histograms["race.inner.seconds"]["count"] == expected
        # The main thread's depth is untouched by worker-thread spans.
        assert recorder._span_depth == 0

    def test_module_level_emission_under_use(self, aggressive_switching):
        """The exact call shape racing uses: obs.inc via the module-level
        helpers with a recorder installed."""
        recorder = StatsRecorder()
        with obs.use(recorder):

            def worker():
                for _ in range(PER_THREAD // 4):
                    obs.inc("runtime.race.cancelled")
                    with obs.span("race.lane"):
                        pass

            _run_threads(worker)
        expected = THREADS * (PER_THREAD // 4)
        counters = recorder.summary()["counters"]
        assert counters["runtime.race.cancelled"] == expected
