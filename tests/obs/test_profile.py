"""The span-tree profiler: reconstruction, aggregation, rendering."""

import pytest

from repro import obs
from repro.obs.profile import TeeSink, profile_spans, profile_trace
from repro.obs.recorder import StatsRecorder
from repro.obs.sink import JsonlSink, ListSink


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _recorded(structure):
    """Run ``structure(recorder, clock)`` and return the span events."""
    clock = FakeClock()
    sink = ListSink()
    recorder = StatsRecorder(sink=sink, clock=clock)
    structure(recorder, clock)
    return sink.events


class TestTreeReconstruction:
    def test_nested_spans_rebuild_parentage(self):
        def structure(recorder, clock):
            with recorder.span("run"):
                with recorder.span("compile"):
                    clock.advance(0.2)
                with recorder.span("sample"):
                    clock.advance(0.7)
                clock.advance(0.1)

        profile = profile_spans(_recorded(structure))
        assert len(profile.roots) == 1
        root = profile.roots[0]
        assert root.name == "run"
        assert [child.name for child in root.children] == [
            "compile",
            "sample",
        ]
        assert root.dur_s == pytest.approx(1.0)
        assert root.self_s == pytest.approx(0.1)

    def test_self_time_excludes_direct_children_only(self):
        def structure(recorder, clock):
            with recorder.span("a"):
                clock.advance(0.1)
                with recorder.span("b"):
                    clock.advance(0.2)
                    with recorder.span("c"):
                        clock.advance(0.4)

        profile = profile_spans(_recorded(structure))
        phases = profile.phases
        assert phases["a"].self_s == pytest.approx(0.1)
        assert phases["b"].self_s == pytest.approx(0.2)
        assert phases["b"].total_s == pytest.approx(0.6)
        assert phases["c"].self_s == pytest.approx(0.4)
        assert profile.total_s == pytest.approx(0.7)

    def test_sequential_roots_each_keep_their_children(self):
        def structure(recorder, clock):
            for _ in range(3):
                with recorder.span("call"):
                    with recorder.span("inner"):
                        clock.advance(0.1)

        profile = profile_spans(_recorded(structure))
        assert len(profile.roots) == 3
        assert all(len(root.children) == 1 for root in profile.roots)
        assert profile.phases["call"].count == 3
        assert profile.phases["inner"].count == 3
        assert profile.phases["inner"].total_s == pytest.approx(0.3)
        assert profile.phases["inner"].mean_s == pytest.approx(0.1)

    def test_repeated_phase_names_aggregate(self):
        def structure(recorder, clock):
            with recorder.span("run"):
                for _ in range(5):
                    with recorder.span("batch"):
                        clock.advance(0.01)

        profile = profile_spans(_recorded(structure))
        batch = profile.phases["batch"]
        assert batch.count == 5
        assert batch.total_s == pytest.approx(0.05)
        assert profile.phases["run"].self_s == pytest.approx(0.0)

    def test_orphan_spans_surface_as_roots(self):
        """A truncated trace (parent record missing) still profiles."""
        events = [
            {"ts": 0.5, "type": "span", "name": "child", "dur_s": 0.5,
             "depth": 1},
        ]
        profile = profile_spans(events)
        assert [root.name for root in profile.roots] == ["child"]
        assert profile.phases["child"].total_s == pytest.approx(0.5)

    def test_non_span_records_ignored(self):
        events = [
            {"ts": 0.0, "type": "event", "name": "tick", "fields": {}},
            {"ts": 1.0, "type": "span", "name": "s", "dur_s": 1.0,
             "depth": 0},
        ]
        profile = profile_spans(events)
        assert list(profile.phases) == ["s"]


class TestOutputs:
    def test_to_dict_sorted_by_self_time(self):
        def structure(recorder, clock):
            with recorder.span("light"):
                clock.advance(0.1)
            with recorder.span("heavy"):
                clock.advance(0.9)

        summary = profile_spans(_recorded(structure)).to_dict()
        assert summary["total_s"] == pytest.approx(1.0)
        assert [phase["name"] for phase in summary["phases"]] == [
            "heavy",
            "light",
        ]
        heavy = summary["phases"][0]
        assert set(heavy) == {"name", "count", "total_s", "self_s", "mean_s"}

    def test_render_indents_children(self):
        def structure(recorder, clock):
            with recorder.span("outer"):
                with recorder.span("inner"):
                    clock.advance(0.25)

        text = profile_spans(_recorded(structure)).render()
        lines = text.splitlines()
        assert "outer" in lines[1]
        assert lines[2].startswith("  inner")

    def test_render_empty(self):
        assert "(no spans recorded)" in profile_spans([]).render()

    def test_profile_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        clock = FakeClock()
        recorder = StatsRecorder(sink=JsonlSink(path), clock=clock)
        with recorder.span("engine"):
            clock.advance(0.125)
        recorder.close()
        profile = profile_trace(path)
        assert profile.phases["engine"].total_s == pytest.approx(0.125)


class TestTeeSink:
    def test_tee_feeds_both_sinks(self, tmp_path):
        path = str(tmp_path / "tee.jsonl")
        jsonl = JsonlSink(path)
        buffer = ListSink()
        recorder = StatsRecorder(sink=TeeSink(jsonl, buffer))
        with recorder.span("work"):
            pass
        recorder.close()
        assert [e["name"] for e in obs.read_jsonl(path)] == ["work"]
        assert [e["name"] for e in buffer.events] == ["work"]
        assert buffer.closed

    def test_profile_from_real_engine_run(self):
        """End to end: a real reliability call produces a profile whose
        root covers its children."""
        from repro.logic.evaluator import FOQuery
        from repro.reliability.exact import reliability
        from repro.util.rng import make_rng
        from repro.workloads.random_db import random_unreliable_database

        db = random_unreliable_database(
            make_rng(6), 6, {"E": 2, "S": 1}, density=0.3, error="1/16"
        )
        query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
        sink = ListSink()
        with obs.use(StatsRecorder(sink=sink)):
            reliability(db, query, method="qf")
        profile = profile_spans(sink.events)
        assert profile.roots, "engine emitted no spans"
        assert profile.total_s > 0.0
        for phase in profile.phases.values():
            assert phase.self_s <= phase.total_s + 1e-12
