"""Engine instrumentation: the counters and traces the engines populate.

Smoke-tests the contract that downstream tooling (the ``--stats`` CLI
table, ``run_experiments.py`` records, convergence plots) relies on:
each exact dispatch path populates its advertised counter names, the
estimators emit per-batch running estimates, and the CLI flags work end
to end.  Also audits seed threading: estimator entry points accept bare
seeds, and no library module touches the module-global RNG.
"""

import re
from fractions import Fraction
from pathlib import Path

import pytest

import repro
from repro import obs
from repro.cli import main
from repro.logic.evaluator import FOQuery
from repro.obs.recorder import StatsRecorder
from repro.obs.sink import ListSink, read_jsonl
from repro.propositional.formula import DNF, Clause, Literal
from repro.propositional.karp_luby import karp_luby_samples
from repro.relational.encoding import encode_unreliable_database
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.montecarlo import (
    estimate_reliability_hamming,
    estimate_truth_probability,
)
from repro.util.rng import as_rng, make_rng

EXISTENTIAL = FOQuery("exists x y. E(x, y) & S(y)")


@pytest.fixture
def recorder():
    with obs.use(StatsRecorder(sink=ListSink())) as active:
        yield active


class TestExactDispatchCounters:
    """reliability() populates the advertised counters on every path."""

    def test_qf_path(self, triangle_db, recorder):
        reliability(
            triangle_db, FOQuery("E(x, y) | S(x)", ("x", "y")), method="qf"
        )
        counters = recorder.summary()["counters"]
        assert counters["exact.dispatch.qf"] == 9  # one per tuple
        assert counters["exact.worlds_enumerated"] > 0
        assert "exact.relevant_atoms" in recorder.summary()["histograms"]

    def test_dnf_path(self, triangle_db, recorder):
        truth_probability(triangle_db, EXISTENTIAL, method="dnf")
        counters = recorder.summary()["counters"]
        assert counters["exact.dispatch.dnf"] == 1
        assert counters["grounding.clauses_raw"] >= counters[
            "grounding.clauses_kept"
        ]
        assert "shannon.nodes" in counters
        assert recorder.summary()["gauges"]["grounding.width"] == 2

    def test_worlds_path(self, triangle_db, recorder):
        truth_probability(triangle_db, EXISTENTIAL, method="worlds")
        counters = recorder.summary()["counters"]
        assert counters["exact.dispatch.worlds"] == 1
        # 4 uncertain atoms in the fixture, all on E/S relations.
        assert counters["exact.worlds_enumerated"] == 16

    def test_lifted_path(self, triangle_db, recorder):
        truth_probability(triangle_db, EXISTENTIAL, method="auto")
        counters = recorder.summary()["counters"]
        assert counters["exact.dispatch.lifted"] == 1
        assert counters["lifted.recursive_calls"] > 0


class TestEstimatorConvergenceEvents:
    def test_karp_luby_batches_trace_running_estimate(self, recorder):
        dnf = DNF(
            [
                Clause([Literal("a", True), Literal("b", True)]),
                Clause([Literal("c", True)]),
            ]
        )
        probs = {"a": Fraction(1, 2), "b": Fraction(1, 3), "c": Fraction(1, 5)}
        run = karp_luby_samples(dnf, probs, 200, make_rng(7))
        events = recorder.sink.by_name("karp_luby.batch")
        assert events, "no convergence events emitted"
        samples = [event["fields"]["samples"] for event in events]
        assert samples == sorted(samples)
        assert samples[-1] == 200
        for event in events:
            assert 0.0 <= event["fields"]["estimate"] <= 1.0
        # The last running estimate is the returned estimate.
        assert events[-1]["fields"]["estimate"] == pytest.approx(run.estimate)
        counters = recorder.summary()["counters"]
        assert counters["karp_luby.samples"] == 200
        assert recorder.summary()["gauges"]["karp_luby.cover_weight"] > 0

    def test_montecarlo_batches_have_shrinking_half_width(
        self, triangle_db, recorder
    ):
        estimate_truth_probability(
            triangle_db, EXISTENTIAL, make_rng(3), samples=120, delta=0.1
        )
        events = recorder.sink.by_name("montecarlo.batch")
        assert events
        widths = [event["fields"]["half_width"] for event in events]
        assert widths == sorted(widths, reverse=True)
        assert events[-1]["fields"]["samples"] == 120
        assert recorder.summary()["counters"]["montecarlo.samples"] == 120

    def test_hamming_estimator_emits_batches(self, triangle_db, recorder):
        estimate_reliability_hamming(
            triangle_db, EXISTENTIAL, make_rng(5), samples=60
        )
        events = recorder.sink.by_name("montecarlo.hamming_batch")
        assert events
        assert events[-1]["fields"]["samples"] == 60
        for event in events:
            assert 0.0 <= event["fields"]["estimate"] <= 1.0


class TestSeedThreading:
    """Estimators accept bare seeds; results match an equal-seed Random."""

    def test_as_rng_identity_and_seeding(self):
        rng = make_rng(9)
        assert as_rng(rng) is rng
        assert as_rng(9).random() == make_rng(9).random()

    def test_karp_luby_accepts_seed(self):
        dnf = DNF([Clause([Literal("a", True), Literal("b", True)])])
        probs = {"a": Fraction(1, 2), "b": Fraction(1, 2)}
        seeded = karp_luby_samples(dnf, probs, 50, 13)
        threaded = karp_luby_samples(dnf, probs, 50, make_rng(13))
        assert seeded.estimate == threaded.estimate

    def test_montecarlo_accepts_seed(self, triangle_db):
        seeded = estimate_truth_probability(
            triangle_db, EXISTENTIAL, 21, samples=40
        )
        threaded = estimate_truth_probability(
            triangle_db, EXISTENTIAL, make_rng(21), samples=40
        )
        assert seeded == threaded

    def test_no_module_global_rng_in_library(self):
        """Audit: no ``random.<draw>()`` on the module-global generator.

        Every coin flip must go through an explicit ``random.Random``
        so that traces are reproducible run to run.
        """
        source_root = Path(repro.__file__).parent
        forbidden = re.compile(
            r"(?<!\.)\brandom\.(random|randint|randrange|choice|choices|"
            r"shuffle|sample|uniform|gauss|getrandbits|betavariate)\("
        )
        offenders = []
        for path in sorted(source_root.rglob("*.py")):
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if forbidden.search(line):
                    offenders.append(f"{path}:{number}: {line.strip()}")
        assert not offenders, "module-global RNG use:\n" + "\n".join(offenders)


class TestCliObservability:
    @pytest.fixture
    def db_file(self, tmp_path, triangle_db):
        path = tmp_path / "db.txt"
        path.write_text(encode_unreliable_database(triangle_db))
        return str(path)

    def test_compute_stats_prints_counters(self, db_file, capsys):
        code = main(
            ["compute", db_file, "exists x y. E(x, y) & S(y)", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- engine stats --" in out
        assert "exact.dispatch." in out

    def test_compute_worlds_stats_shows_worlds_enumerated(
        self, db_file, capsys
    ):
        code = main(
            [
                "compute",
                db_file,
                "exists x y. E(x, y) & S(y)",
                "--method",
                "worlds",
                "--stats",
            ]
        )
        assert code == 0
        assert "exact.worlds_enumerated" in capsys.readouterr().out

    def test_estimate_trace_writes_valid_jsonl(self, db_file, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        code = main(
            [
                "estimate",
                db_file,
                "exists x. S(x) & E(x, 'c')",
                "--epsilon",
                "0.2",
                "--delta",
                "0.2",
                "--seed",
                "3",
                "--trace",
                trace,
            ]
        )
        assert code == 0
        events = read_jsonl(trace)
        assert events, "trace file empty"
        batches = [
            event for event in events if event["name"] == "karp_luby.batch"
        ]
        assert batches, "no convergence events in trace"
        for event in events:
            assert {"ts", "type", "name"} <= set(event)

    def test_recorder_restored_after_cli_run(self, db_file, capsys):
        main(["compute", db_file, "exists x y. E(x, y)", "--stats"])
        capsys.readouterr()
        assert not obs.enabled()

    def test_stats_off_by_default(self, db_file, capsys):
        code = main(["compute", db_file, "exists x y. E(x, y)"])
        assert code == 0
        assert "engine stats" not in capsys.readouterr().out


class TestRunExperimentsRecords:
    def test_record_carries_metrics_and_logs_failures(self, caplog):
        import sys

        sys.path.insert(0, str(Path(repro.__file__).parents[2] / "benchmarks"))
        try:
            import run_experiments
        finally:
            sys.path.pop(0)

        run_experiments.EXPERIMENTS["ETEST"] = lambda: truth_probability(
            _tiny_db(), EXISTENTIAL, method="dnf"
        )
        run_experiments.EXPERIMENTS["EBOOM"] = _boom
        from repro.bench.record import validate

        try:
            good_ok, good = run_experiments._run_experiment("ETEST")
            assert good_ok is True
            validate(good.to_dict())
            assert good.bench == "experiments.table_etest"
            assert good.metrics["counters"]["exact.dispatch.dnf"] == 1
            assert good.profile["phases"]
            with caplog.at_level("ERROR", logger="repro.benchmarks"):
                bad_ok, bad = run_experiments._run_experiment("EBOOM")
            assert bad_ok is False
            assert bad.extra["ok"] is False
            assert any(
                "EBOOM" in record.message for record in caplog.records
            )
        finally:
            del run_experiments.EXPERIMENTS["ETEST"]
            del run_experiments.EXPERIMENTS["EBOOM"]


def _boom():
    raise RuntimeError("deliberate test failure")


def _tiny_db():
    from repro.relational.atoms import Atom
    from repro.relational.builder import StructureBuilder
    from repro.reliability.unreliable import UnreliableDatabase

    builder = StructureBuilder(["a", "b"])
    builder.relation("E", 2)
    builder.relation("S", 1)
    builder.add("E", ("a", "b"))
    builder.add("S", ("b",))
    return UnreliableDatabase(
        builder.build(), {Atom("E", ("a", "b")): Fraction(1, 4)}
    )
