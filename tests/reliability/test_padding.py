"""Tests for the Theorem 5.12 xi-padding estimator."""

from fractions import Fraction

import pytest

from repro.logic.datalog import reachability_query
from repro.logic.evaluator import FOQuery
from repro.relational.atoms import Atom
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.padding import (
    PAD_C,
    PAD_D,
    PAD_RELATION,
    exact_padded_identity,
    pad_database,
    padded_reliability,
    padded_truth_probability,
    padding_sample_count,
)
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import make_rng


class TestPadDatabase:
    def test_adds_relation_constants_and_errors(self, triangle_db):
        padded = pad_database(triangle_db, Fraction(1, 4))
        structure = padded.structure
        assert PAD_RELATION in structure.vocabulary
        assert PAD_C in structure.universe
        assert PAD_D in structure.universe
        assert padded.mu(Atom(PAD_RELATION, (PAD_C,))) == Fraction(1, 4)
        assert padded.mu(Atom(PAD_RELATION, (PAD_D,))) == Fraction(1, 4)

    def test_keeps_existing_errors(self, triangle_db):
        padded = pad_database(triangle_db, Fraction(1, 4))
        assert padded.mu(Atom("E", ("a", "b"))) == Fraction(1, 4)

    def test_xi_range_enforced(self, triangle_db):
        for bad in (Fraction(0), Fraction(1, 2), Fraction(3, 4)):
            with pytest.raises(ProbabilityError):
                pad_database(triangle_db, bad)

    def test_name_clash_detected(self, triangle_db):
        with pytest.raises(QueryError):
            pad_database(triangle_db, Fraction(1, 4), relation="E")
        with pytest.raises(QueryError):
            pad_database(triangle_db, Fraction(1, 4), c="a")
        with pytest.raises(QueryError):
            pad_database(triangle_db, Fraction(1, 4), c="z", d="z")


class TestSampleCount:
    def test_paper_formula(self):
        # t = ceil(9 / (2 * 0.25 * 0.1^2) * ln(1/0.05)) = ceil(1800 * 2.9957)
        assert padding_sample_count(Fraction(1, 4), 0.1, 0.05) == 5393

    def test_smaller_xi_needs_more_samples(self):
        assert padding_sample_count(
            Fraction(1, 10), 0.1, 0.1
        ) > padding_sample_count(Fraction(1, 4), 0.1, 0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ProbabilityError):
            padding_sample_count(Fraction(1, 4), 0, 0.1)


class TestPaddedIdentity:
    @pytest.mark.parametrize("xi", [Fraction(1, 4), Fraction(1, 3), Fraction(1, 10)])
    @pytest.mark.parametrize(
        "sentence",
        [
            "exists x y. E(x, y) & S(y)",
            "forall x. exists y. E(x, y)",
            "exists x. E(x, x)",
        ],
    )
    def test_equation_3_exact(self, triangle_db, xi, sentence):
        p, nu = exact_padded_identity(triangle_db, sentence, xi)
        assert p == xi * xi + (xi - xi * xi) * nu

    def test_p_in_the_proofs_interval(self, triangle_db):
        xi = Fraction(1, 4)
        p, _nu = exact_padded_identity(triangle_db, "exists x. E(x, x)", xi)
        assert xi * xi <= p <= xi

    def test_identity_holds_for_datalog(self, triangle_db):
        from repro.reliability.exact import _instantiated

        xi = Fraction(1, 4)
        query = _instantiated(reachability_query(), ("a", "c"))
        p, nu = exact_padded_identity(triangle_db, query, xi)
        assert p == xi * xi + (xi - xi * xi) * nu

    def test_padding_does_not_change_quantified_semantics(self, triangle_db):
        # A universal query would flip to false if the fresh constants
        # leaked into its range; equation (3) would then fail.
        xi = Fraction(1, 4)
        p, nu = exact_padded_identity(triangle_db, "forall x. exists y. E(x, y) | S(x)", xi)
        assert p == xi * xi + (xi - xi * xi) * nu


class TestPaddedEstimators:
    def test_truth_probability_additive(self, triangle_db):
        rng = make_rng(5)
        sentence = "exists x y. E(x, y) & S(y)"
        exact = float(truth_probability(triangle_db, sentence))
        estimate = padded_truth_probability(
            triangle_db, sentence, 0.05, 0.05, rng
        )
        assert abs(estimate.value - exact) <= 0.05

    def test_uses_paper_budget(self, triangle_db):
        rng = make_rng(6)
        estimate = padded_truth_probability(
            triangle_db, "exists x. E(x, x)", 0.2, 0.1, rng, xi=Fraction(1, 4)
        )
        assert estimate.samples == padding_sample_count(
            Fraction(1, 4), 0.1, 0.1
        )

    def test_boolean_reliability(self, triangle_db):
        rng = make_rng(7)
        sentence = "exists x y. E(x, y) & S(y)"
        exact = float(reliability(triangle_db, sentence))
        estimate = padded_reliability(triangle_db, sentence, 0.06, 0.05, rng)
        assert abs(estimate.value - exact) <= 0.06

    def test_alternating_fo_query_supported(self, triangle_db):
        # The fragment Corollary 5.5 cannot handle but Theorem 5.12 can.
        rng = make_rng(8)
        sentence = "forall x. exists y. E(x, y)"
        exact = float(reliability(triangle_db, sentence))
        estimate = padded_reliability(triangle_db, sentence, 0.08, 0.1, rng)
        assert abs(estimate.value - exact) <= 0.08

    def test_datalog_binary_reliability(self, triangle_db):
        rng = make_rng(9)
        query = reachability_query()
        exact = float(reliability(triangle_db, query))
        estimate = padded_reliability(triangle_db, query, 0.2, 0.2, rng)
        assert abs(estimate.value - exact) <= 0.2

    def test_estimate_clamped(self, certain_db):
        rng = make_rng(10)
        estimate = padded_truth_probability(
            certain_db, "exists x. S(x)", 0.3, 0.3, rng
        )
        assert 0.0 <= estimate.value <= 1.0
