"""Tests for Theorem 5.4's FPTRAS and Corollary 5.5's additive estimator."""

from fractions import Fraction

import pytest

from repro.logic.evaluator import FOQuery
from repro.reliability.approx import (
    existential_probability,
    reliability_additive,
)
from repro.reliability.exact import reliability, truth_probability
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database


@pytest.fixture
def db():
    rng = make_rng(17)
    return random_unreliable_database(
        rng,
        size=4,
        relations={"E": 2, "S": 1},
        density=0.4,
        error_choices=["1/4", "1/8", "0"],
    )


class TestExistentialProbability:
    def test_tracks_exact_value(self, db):
        rng = make_rng(1)
        sentence = "exists x y. E(x, y) & S(y)"
        exact = float(truth_probability(db, sentence))
        estimate = existential_probability(db, sentence, 0.05, 0.05, rng)
        assert exact > 0
        assert abs(estimate.value - exact) / exact <= 0.05

    def test_certain_sentences_shortcut(self, db, rng):
        certainly_false = existential_probability(
            db, "exists x. S(x) & ~S(x)", 0.1, 0.1, rng
        )
        assert certainly_false.value == 0.0
        assert certainly_false.samples == 0

    def test_requires_existential(self, db, rng):
        with pytest.raises(QueryError):
            existential_probability(db, "forall x. S(x)", 0.1, 0.1, rng)

    def test_requires_boolean(self, db, rng):
        with pytest.raises(QueryError):
            existential_probability(db, FOQuery("S(x)"), 0.1, 0.1, rng)

    def test_negated_universal_accepted(self, db, rng):
        estimate = existential_probability(
            db, "~forall x. S(x)", 0.1, 0.1, rng
        )
        exact = float(truth_probability(db, "~forall x. S(x)"))
        assert abs(estimate.value - exact) <= 0.1


class TestReliabilityAdditive:
    @pytest.mark.parametrize(
        "source,free",
        [
            ("exists x y. E(x, y) & S(y)", ()),
            ("forall x. S(x)", ()),
            ("exists y. E(x, y)", ("x",)),
            ("E(x, y) & S(x)", ("x", "y")),
        ],
    )
    def test_additive_error_within_epsilon(self, db, source, free):
        rng = make_rng(42)
        query = FOQuery(source, free)
        exact = float(reliability(db, query))
        estimate = reliability_additive(db, query, 0.05, 0.05, rng)
        assert abs(estimate.value - exact) <= 0.05

    def test_repeated_runs_mostly_within_bound(self, db):
        # delta = 0.2: allow a couple of misses out of 20, fail only if
        # far more miss than the guarantee allows.
        query = FOQuery("exists x y. E(x, y) & S(y)")
        exact = float(reliability(db, query))
        misses = 0
        for seed in range(20):
            estimate = reliability_additive(
                db, query, 0.08, 0.2, make_rng(seed)
            )
            if abs(estimate.value - exact) > 0.08:
                misses += 1
        assert misses <= 6

    def test_invalid_parameters(self, db, rng):
        query = FOQuery("exists x. S(x)")
        with pytest.raises(ProbabilityError):
            reliability_additive(db, query, 0.0, 0.1, rng)
        with pytest.raises(ProbabilityError):
            reliability_additive(db, query, 0.1, 0.0, rng)

    def test_rejects_non_fo_queries(self, db, rng):
        from repro.logic.datalog import reachability_query

        with pytest.raises(QueryError):
            reliability_additive(db, reachability_query(), 0.1, 0.1, rng)

    def test_rejects_alternating_query(self, db, rng):
        query = FOQuery("forall x. exists y. E(x, y)")
        with pytest.raises(QueryError):
            reliability_additive(db, query, 0.1, 0.1, rng)

    def test_estimate_within_unit_interval(self, db, rng):
        query = FOQuery("exists y. E(x, y)", ("x",))
        estimate = reliability_additive(db, query, 0.1, 0.1, rng)
        assert 0.0 <= estimate.value <= 1.0
