"""Tests for grounding existential sentences to DNF over uncertain atoms."""

from fractions import Fraction

import pytest

from repro.logic.evaluator import FOQuery
from repro.logic.parser import parse
from repro.propositional.counting import probability_exact
from repro.relational.atoms import Atom
from repro.reliability.grounding import (
    ground_existential_to_dnf,
    grounding_probabilities,
    relevant_atoms,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError


class TestGroundExistential:
    def test_mentions_only_uncertain_atoms(self, triangle_db):
        result = ground_existential_to_dnf(
            triangle_db, parse("exists x y. E(x, y) & S(y)")
        )
        uncertain = set(triangle_db.uncertain_atoms())
        assert set(result.dnf.variables) <= uncertain

    def test_certainly_true_sentence_collapses(self, triangle_db):
        # E(b, c) holds with mu = 0, so the sentence is certain.
        result = ground_existential_to_dnf(
            triangle_db, parse("exists x y. E(x, y)")
        )
        assert result.dnf.is_true()

    def test_certainly_false_sentence_collapses(self, certain_db):
        result = ground_existential_to_dnf(certain_db, parse("exists x. E(x, x)"))
        assert result.dnf.is_false()

    def test_folding_shrinks_clause_count(self, triangle_db):
        result = ground_existential_to_dnf(
            triangle_db, parse("exists x y. E(x, y) & S(x)")
        )
        assert len(result.dnf) < result.clauses_before_folding

    def test_equalities_evaluated_away(self, triangle_db):
        result = ground_existential_to_dnf(
            triangle_db, parse("exists x y. E(x, y) & x != y")
        )
        for clause in result.dnf.clauses:
            for literal in clause:
                assert isinstance(literal.variable, Atom)

    def test_width_reported(self, triangle_db):
        result = ground_existential_to_dnf(
            triangle_db, parse("exists x y. E(x, y) & S(x) & S(y)")
        )
        assert result.width == 3

    def test_universal_rejected(self, triangle_db):
        with pytest.raises(QueryError):
            ground_existential_to_dnf(triangle_db, parse("forall x. S(x)"))

    def test_free_variable_rejected(self, triangle_db):
        with pytest.raises(QueryError):
            ground_existential_to_dnf(triangle_db, parse("exists y. E(x, y)"))

    def test_negative_literals_grounded(self, triangle_db):
        result = ground_existential_to_dnf(
            triangle_db, parse("exists x y. E(x, y) & ~S(x)")
        )
        # E(b, c) is certain, S(b) uncertain (mu = 1/5): the pair (b, c)
        # grounds to the single negative literal ~S(b).
        polarities = {
            (literal.variable, literal.positive)
            for clause in result.dnf.clauses
            for literal in clause
        }
        assert (Atom("S", ("b",)), False) in polarities


class TestGroundedSemantics:
    def test_probability_matches_world_enumeration(self, triangle_db):
        from repro.reliability.space import worlds

        sentence = parse("exists x y. E(x, y) & S(y) & S(x)")
        result = ground_existential_to_dnf(triangle_db, sentence)
        probs = grounding_probabilities(triangle_db, result.dnf)
        grounded = probability_exact(result.dnf, probs)
        query = FOQuery(sentence)
        direct = sum(
            p for world, p in worlds(triangle_db) if query.evaluate(world, ())
        )
        assert grounded == direct

    def test_probabilities_are_nu_values(self, triangle_db):
        result = ground_existential_to_dnf(
            triangle_db, parse("exists x. S(x) & ~E(x, x)")
        )
        probs = grounding_probabilities(triangle_db, result.dnf)
        for atom, p in probs.items():
            assert p == triangle_db.nu(atom)


class TestRelevantAtoms:
    def test_fo_query_restricts_to_used_relations(self, triangle_db):
        query = FOQuery("exists x. S(x)")
        atoms = relevant_atoms(triangle_db, query)
        assert all(atom.relation == "S" for atom in atoms)
        assert len(atoms) == 2

    def test_opaque_query_gets_everything(self, triangle_db):
        class Opaque:
            arity = 0

            def evaluate(self, structure, args=()):
                return True

        assert relevant_atoms(triangle_db, Opaque()) == triangle_db.uncertain_atoms()
