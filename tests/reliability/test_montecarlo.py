"""Tests for the plain Monte-Carlo baselines."""

import pytest

from repro.logic.datalog import reachability_query
from repro.logic.evaluator import FOQuery
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.montecarlo import (
    estimate_reliability_hamming,
    estimate_truth_probability,
    hoeffding_samples,
)
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import make_rng


class TestHoeffding:
    def test_formula(self):
        # ln(2/0.05) / (2 * 0.1^2) ~ 184.4
        assert hoeffding_samples(0.1, 0.05) == 185

    def test_invalid(self):
        with pytest.raises(ProbabilityError):
            hoeffding_samples(0, 0.1)
        with pytest.raises(ProbabilityError):
            hoeffding_samples(0.1, 1.0)


class TestEstimateTruthProbability:
    def test_tracks_exact(self, triangle_db):
        rng = make_rng(0)
        sentence = "exists x. S(x) & ~E(x, x)"
        exact = float(truth_probability(triangle_db, sentence))
        estimate = estimate_truth_probability(
            triangle_db, sentence, rng, samples=20000
        )
        assert abs(estimate - exact) < 0.02

    def test_with_args(self, triangle_db):
        rng = make_rng(1)
        query = FOQuery("E(x, y)", ("x", "y"))
        estimate = estimate_truth_probability(
            triangle_db, query, rng, samples=8000, args=("a", "b")
        )
        assert abs(estimate - 0.75) < 0.03

    def test_arity_mismatch(self, triangle_db, rng):
        with pytest.raises(QueryError):
            estimate_truth_probability(
                triangle_db, FOQuery("S(x)"), rng, samples=10
            )

    def test_works_with_datalog(self, triangle_db):
        rng = make_rng(2)
        from repro.reliability.exact import wrong_probability

        query = reachability_query()
        estimate = estimate_truth_probability(
            triangle_db, query, rng, samples=6000, args=("a", "c")
        )
        exact_wrong = wrong_probability(triangle_db, query, ("a", "c"))
        # Reach(a, c) holds on the observed structure.
        assert abs(estimate - (1 - float(exact_wrong))) < 0.03


class TestEstimateReliabilityHamming:
    def test_tracks_exact_binary_query(self, triangle_db):
        rng = make_rng(3)
        query = FOQuery("E(x, y)", ("x", "y"))
        exact = float(reliability(triangle_db, query))
        estimate = estimate_reliability_hamming(
            triangle_db, query, rng, samples=8000
        )
        assert abs(estimate - exact) < 0.01

    def test_tracks_exact_datalog(self, triangle_db):
        rng = make_rng(4)
        query = reachability_query()
        exact = float(reliability(triangle_db, query))
        estimate = estimate_reliability_hamming(
            triangle_db, query, rng, samples=6000
        )
        assert abs(estimate - exact) < 0.01

    def test_certain_db_gives_one(self, certain_db, rng):
        query = FOQuery("E(x, y)", ("x", "y"))
        assert (
            estimate_reliability_hamming(certain_db, query, rng, samples=50)
            == 1.0
        )

    def test_default_budget_from_hoeffding(self, certain_db, rng):
        value = estimate_reliability_hamming(
            certain_db, FOQuery("exists x. S(x)"), rng, epsilon=0.2, delta=0.2
        )
        assert value == 1.0


class TestNegativeSampleBudget:
    """A negative sample count is a caller bug, not a default request."""

    def test_truth_probability_rejects_negative(self, triangle_db, rng):
        with pytest.raises(ProbabilityError, match="sample budget must be >= 0"):
            estimate_truth_probability(
                triangle_db, FOQuery("exists x. S(x)"), rng, samples=-1
            )

    def test_hamming_rejects_negative(self, triangle_db, rng):
        with pytest.raises(ProbabilityError, match="got -5"):
            estimate_reliability_hamming(
                triangle_db, FOQuery("exists x. S(x)"), rng, samples=-5
            )

    def test_zero_still_means_hoeffding_default(self, certain_db, rng):
        # The documented sentinel: 0 derives the budget from (eps, delta).
        value = estimate_truth_probability(
            certain_db,
            FOQuery("exists x. S(x)"),
            rng,
            epsilon=0.25,
            delta=0.25,
            samples=0,
        )
        assert value == 1.0
