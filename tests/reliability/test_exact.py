"""Tests for the exact reliability engines.

Strategy: the world-enumeration engine is the literal definition, so the
QF fast path (Proposition 3.1) and the grounded-DNF path (Theorem 5.4's
construction evaluated exactly) are validated against it on small random
databases, across fragments.
"""

from fractions import Fraction

import pytest

from repro.logic.datalog import reachability_query
from repro.logic.evaluator import FOQuery
from repro.relational.atoms import Atom
from repro.reliability.exact import (
    as_query,
    expected_error,
    qf_tuple_wrong_probability,
    reliability,
    truth_probability,
    wrong_probability,
)
from repro.reliability.space import worlds
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database


def oracle_truth_probability(db, query):
    """Definitionally exact: sum world probabilities where the query holds."""
    return sum(
        (p for world, p in worlds(db) if query.evaluate(world, ())),
        Fraction(0),
    )


def oracle_expected_error(db, query):
    """Definitionally exact H_psi via full world enumeration."""
    observed = query.answers(db.structure)
    total = Fraction(0)
    for world, p in worlds(db):
        total += p * len(observed.symmetric_difference(query.answers(world)))
    return total


class TestAsQuery:
    def test_accepts_strings(self):
        query = as_query("exists x. S(x)")
        assert query.arity == 0

    def test_accepts_formulas(self):
        from repro.logic.parser import parse

        assert as_query(parse("S(x)")).arity == 1

    def test_accepts_protocol_objects(self):
        query = reachability_query()
        assert as_query(query) is query

    def test_rejects_garbage(self):
        with pytest.raises(QueryError):
            as_query(42)


class TestTruthProbability:
    @pytest.mark.parametrize(
        "sentence",
        [
            "exists x y. E(x, y) & S(y)",
            "exists x. S(x) & ~E(x, x)",
            "forall x. S(x) -> exists y. E(x, y)",
            "exists x. S(x) | exists y. E(y, y)",
            "~exists x. E(x, x)",
        ],
    )
    def test_auto_matches_oracle(self, triangle_db, sentence):
        query = FOQuery(sentence)
        assert truth_probability(triangle_db, sentence) == (
            oracle_truth_probability(triangle_db, query)
        )

    def test_methods_agree_on_existential(self, triangle_db):
        sentence = "exists x y. E(x, y) & S(x) & S(y)"
        dnf = truth_probability(triangle_db, sentence, method="dnf")
        enumerated = truth_probability(triangle_db, sentence, method="worlds")
        assert dnf == enumerated

    def test_qf_method_matches(self, triangle_db):
        sentence = "E('a', 'b') & ~S('a')"
        qf = truth_probability(triangle_db, sentence, method="qf")
        enumerated = truth_probability(triangle_db, sentence, method="worlds")
        assert qf == enumerated

    def test_qf_method_rejects_quantifiers(self, triangle_db):
        with pytest.raises(QueryError):
            truth_probability(triangle_db, "exists x. S(x)", method="qf")

    def test_dnf_method_rejects_alternation(self, triangle_db):
        with pytest.raises(QueryError):
            truth_probability(
                triangle_db, "forall x. exists y. E(x, y)", method="dnf"
            )

    def test_nonboolean_rejected(self, triangle_db):
        with pytest.raises(QueryError):
            truth_probability(triangle_db, "S(x)")

    def test_datalog_boolean_via_instantiation(self, triangle_db):
        query = reachability_query()
        p = wrong_probability(triangle_db, query, ("a", "c"))
        # Reach(a, c) holds in the observed db; wrong iff the actual world
        # breaks both the direct edge possibility and the two-hop path.
        assert 0 < p < 1

    def test_certain_database_probability_is_indicator(self, certain_db):
        assert truth_probability(certain_db, "exists x. S(x)") == 1
        assert truth_probability(certain_db, "exists x. E(x, x)") == 0


class TestWrongProbability:
    def test_true_observed_uses_complement(self, triangle_db):
        sentence = "exists x y. E(x, y) & S(y)"
        p = truth_probability(triangle_db, sentence)
        assert wrong_probability(triangle_db, sentence) == 1 - p

    def test_false_observed_uses_probability(self, triangle_db):
        sentence = "exists x. E(x, x)"
        p = truth_probability(triangle_db, sentence)
        assert wrong_probability(triangle_db, sentence) == p

    def test_arity_mismatch_rejected(self, triangle_db):
        with pytest.raises(QueryError):
            wrong_probability(triangle_db, FOQuery("S(x)"), ())


class TestExpectedErrorAndReliability:
    @pytest.mark.parametrize(
        "query_source,free",
        [
            ("E(x, y)", ("x", "y")),
            ("S(x) & ~E(x, x)", ("x",)),
            ("exists y. E(x, y) & S(y)", ("x",)),
            ("exists x y. E(x, y) & S(y)", ()),
        ],
    )
    def test_matches_oracle(self, triangle_db, query_source, free):
        query = FOQuery(query_source, free)
        assert expected_error(triangle_db, query) == oracle_expected_error(
            triangle_db, query
        )

    def test_reliability_formula(self, triangle_db):
        query = FOQuery("E(x, y)", ("x", "y"))
        h = expected_error(triangle_db, query)
        assert reliability(triangle_db, query) == 1 - h / 9

    def test_boolean_reliability(self, triangle_db):
        sentence = "exists x. E(x, x)"
        assert reliability(triangle_db, sentence) == 1 - expected_error(
            triangle_db, sentence
        )

    def test_certain_database_fully_reliable(self, certain_db):
        assert reliability(certain_db, FOQuery("E(x, y)", ("x", "y"))) == 1

    def test_datalog_reliability_matches_oracle(self, triangle_db):
        query = reachability_query()
        assert expected_error(triangle_db, query) == oracle_expected_error(
            triangle_db, query
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_databases_cross_engine(self, seed):
        rng = make_rng(seed)
        db = random_unreliable_database(
            rng,
            size=3,
            relations={"E": 2, "S": 1},
            density=0.4,
            error_choices=["1/4", "1/3", "0", "1/2"],
            uncertain_fraction=0.5,
        )
        query = FOQuery("exists y. E(x, y) & S(y)", ("x",))
        assert expected_error(db, query) == oracle_expected_error(db, query)


class TestQFFastPath:
    def test_proposition_31_inner_loop(self, triangle_db):
        query = FOQuery("E(x, y) & S(y)", ("x", "y"))
        for args in [("a", "b"), ("b", "c"), ("c", "a")]:
            fast = qf_tuple_wrong_probability(triangle_db, query, args)
            slow = wrong_probability(triangle_db, query, args, method="worlds")
            assert fast == slow

    def test_qf_reliability_whole_query(self, triangle_db):
        query = FOQuery("E(x, y) | S(x)", ("x", "y"))
        fast = reliability(triangle_db, query, method="qf")
        slow = reliability(triangle_db, query, method="worlds")
        assert fast == slow

    def test_scales_past_world_enumeration(self):
        # 40 uncertain atoms: 2^40 worlds is hopeless, but the QF engine
        # only ever looks at the two atoms in each instantiated formula.
        rng = make_rng(31)
        db = random_unreliable_database(
            rng, size=6, relations={"E": 2, "S": 1}, error="1/7"
        )
        assert len(db.uncertain_atoms()) == 42
        query = FOQuery("E(x, y) & S(y)", ("x", "y"))
        value = reliability(db, query, method="qf")
        assert 0 < value <= 1


class TestWorldEnumerationGuard:
    """The worlds engine refuses hopeless enumerations up front."""

    def big_db(self):
        # 25 uncertain atoms -> 2^25 predicted worlds > 2^20 default cap.
        return random_unreliable_database(
            make_rng(7), 5, {"E": 2}, density=1.0, uncertain_fraction=1.0
        )

    def test_refuses_past_default_atom_cap(self):
        from repro.util.errors import CostRefused

        with pytest.raises(CostRefused) as exc_info:
            truth_probability(
                self.big_db(), FOQuery("exists x y. E(x, y)"), method="worlds"
            )
        # The message names the predicted world count, so the caller
        # knows what was refused and how to override.
        assert str(1 << 25) in str(exc_info.value)
        assert exc_info.value.estimate == 1 << 25

    def test_budget_override_allows_enumeration(self, triangle_db):
        from repro.runtime import Budget, apply

        query = FOQuery("exists x y. E(x, y) & S(y)")
        with apply(Budget(max_atoms=2)):
            from repro.util.errors import CostRefused

            with pytest.raises(CostRefused):
                truth_probability(triangle_db, query, method="worlds")
        with apply(Budget(max_atoms=None)):
            value = truth_probability(triangle_db, query, method="worlds")
        assert value == truth_probability(triangle_db, query)
