"""Tests for the possible-world space Omega(D) and the granularity g."""

from fractions import Fraction

import pytest

from repro.relational.atoms import Atom
from repro.reliability.space import (
    paper_granularity,
    scaled_world_counts,
    support_size,
    world_granularity,
    world_probability,
    worlds,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import VocabularyError


class TestWorlds:
    def test_probabilities_sum_to_one(self, triangle_db):
        total = sum(p for _world, p in worlds(triangle_db))
        assert total == 1

    def test_support_size(self, triangle_db):
        assert support_size(triangle_db) == 16
        assert sum(1 for _ in worlds(triangle_db)) == 16

    def test_certain_db_single_world(self, certain_db):
        enumerated = list(worlds(certain_db))
        assert enumerated == [(certain_db.structure, Fraction(1))]

    def test_observed_world_has_product_probability(self, triangle_db):
        by_world = {world: p for world, p in worlds(triangle_db)}
        observed = triangle_db.structure
        expected = (
            Fraction(9, 10)
            * Fraction(3, 4)
            * Fraction(2, 3)
            * Fraction(4, 5)
        )
        assert by_world[observed] == expected

    def test_certain_flip_in_every_world(self, triangle):
        db = UnreliableDatabase(
            triangle,
            {Atom("S", ("b",)): 1, Atom("S", ("a",)): Fraction(1, 2)},
        )
        for world, _p in worlds(db):
            assert not world.holds(Atom("S", ("b",)))


class TestWorldProbability:
    def test_matches_enumeration(self, triangle_db):
        for world, p in worlds(triangle_db):
            assert world_probability(triangle_db, world) == p

    def test_impossible_world_probability_zero(self, triangle_db):
        impossible = triangle_db.structure.flip(Atom("E", ("b", "c")))
        assert world_probability(triangle_db, impossible) == 0

    def test_format_mismatch_rejected(self, triangle_db):
        from repro.relational.schema import Vocabulary
        from repro.relational.structure import Structure

        other = Structure(Vocabulary([("E", 2)]), ["a"])
        with pytest.raises(VocabularyError):
            world_probability(triangle_db, other)


class TestGranularity:
    def test_nu_times_g_is_integral_everywhere(self, triangle_db):
        g = world_granularity(triangle_db)
        for _world, p in worlds(triangle_db):
            assert (p * g).denominator == 1

    def test_scaled_counts_sum_to_g(self, triangle_db):
        g = world_granularity(triangle_db)
        counts = [count for _world, count in scaled_world_counts(triangle_db)]
        assert sum(counts) == g

    def test_paper_granularity_is_lcm_and_can_be_too_small(self, triangle):
        # Reproduction note made executable: with two atoms at 1/2, the
        # paper's gcd-loop yields g = 2, but worlds have probability 1/4.
        db = UnreliableDatabase(
            triangle,
            {
                Atom("S", ("a",)): Fraction(1, 2),
                Atom("S", ("b",)): Fraction(1, 2),
            },
        )
        assert paper_granularity(db) == 2
        assert world_granularity(db) == 4
        smallest = min(p for _w, p in worlds(db))
        assert (smallest * paper_granularity(db)).denominator != 1
        assert (smallest * world_granularity(db)).denominator == 1

    def test_certain_db_granularity_one(self, certain_db):
        assert world_granularity(certain_db) == 1
