"""Tests for the unreliable-database model (Definition 2.1)."""

from fractions import Fraction

import pytest

from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.unreliable import UnreliableDatabase, uniform_error
from repro.util.errors import ProbabilityError, VocabularyError
from repro.util.rng import make_rng


class TestConstruction:
    def test_mu_defaults_to_zero(self, triangle):
        db = UnreliableDatabase(triangle)
        assert db.mu(Atom("E", ("a", "b"))) == 0
        assert db.uncertain_atoms() == ()

    def test_mu_lookup_and_parsing(self, triangle):
        db = UnreliableDatabase(triangle, {Atom("E", ("a", "b")): "1/3"})
        assert db.mu(Atom("E", ("a", "b"))) == Fraction(1, 3)

    def test_float_probability_parsed_decimally(self, triangle):
        db = UnreliableDatabase(triangle, {Atom("S", ("a",)): 0.1})
        assert db.mu(Atom("S", ("a",))) == Fraction(1, 10)

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(ProbabilityError):
            UnreliableDatabase(triangle, {Atom("S", ("a",)): 2})

    def test_bad_arity_rejected(self, triangle):
        with pytest.raises(VocabularyError):
            UnreliableDatabase(triangle, {Atom("E", ("a",)): Fraction(1, 2)})

    def test_foreign_element_rejected(self, triangle):
        with pytest.raises(VocabularyError):
            UnreliableDatabase(triangle, {Atom("S", ("zz",)): Fraction(1, 2)})

    def test_unknown_relation_rejected(self, triangle):
        with pytest.raises(VocabularyError):
            UnreliableDatabase(triangle, {Atom("Q", ("a",)): Fraction(1, 2)})


class TestNu:
    def test_nu_of_true_atom(self, triangle_db):
        # E(a, b) holds with error 1/4, so nu = 3/4.
        assert triangle_db.nu(Atom("E", ("a", "b"))) == Fraction(3, 4)

    def test_nu_of_false_atom(self, triangle_db):
        # E(a, c) does not hold, error 1/10, so nu = 1/10.
        assert triangle_db.nu(Atom("E", ("a", "c"))) == Fraction(1, 10)

    def test_nu_of_certain_atom(self, triangle_db):
        assert triangle_db.nu(Atom("E", ("b", "c"))) == 1
        assert triangle_db.nu(Atom("E", ("c", "a"))) == 0


class TestUncertainAtoms:
    def test_sorted_and_complete(self, triangle_db):
        atoms = triangle_db.uncertain_atoms()
        assert len(atoms) == 4
        assert list(atoms) == sorted(atoms, key=repr)

    def test_mu_one_is_not_uncertain(self, triangle):
        db = UnreliableDatabase(triangle, {Atom("S", ("a",)): 1})
        assert db.uncertain_atoms() == ()
        assert db.certain_flips() == (Atom("S", ("a",)),)

    def test_default_error_makes_all_uncertain(self, triangle):
        db = UnreliableDatabase(triangle, default_error=Fraction(1, 10))
        assert len(db.uncertain_atoms()) == 9 + 3


class TestSampling:
    def test_certain_db_samples_itself(self, certain_db, rng):
        assert certain_db.sample(rng) == certain_db.structure

    def test_certain_flip_always_applied(self, triangle, rng):
        db = UnreliableDatabase(triangle, {Atom("S", ("b",)): 1})
        for _ in range(5):
            world = db.sample(rng)
            assert not world.holds(Atom("S", ("b",)))

    def test_sample_frequency_tracks_mu(self, triangle):
        rng = make_rng(99)
        atom = Atom("E", ("a", "c"))
        db = UnreliableDatabase(triangle, {atom: Fraction(1, 4)})
        hits = sum(1 for _ in range(4000) if db.sample(rng).holds(atom))
        assert 0.20 <= hits / 4000 <= 0.30

    def test_observed_world_applies_certain_flips(self, triangle):
        db = UnreliableDatabase(triangle, {Atom("S", ("b",)): 1})
        assert not db.observed_world().holds(Atom("S", ("b",)))
        # The observed *structure* keeps the original value.
        assert db.structure.holds(Atom("S", ("b",)))


class TestDerivedDatabases:
    def test_with_errors_merges(self, triangle_db):
        updated = triangle_db.with_errors({Atom("S", ("c",)): Fraction(1, 2)})
        assert updated.mu(Atom("S", ("c",))) == Fraction(1, 2)
        assert updated.mu(Atom("E", ("a", "b"))) == Fraction(1, 4)

    def test_with_structure_keeps_mu(self, triangle_db, triangle):
        flipped = triangle.flip(Atom("S", ("c",)))
        moved = triangle_db.with_structure(flipped)
        assert moved.mu(Atom("E", ("a", "b"))) == Fraction(1, 4)
        assert moved.structure == flipped

    def test_error_table_is_copy(self, triangle_db):
        table = triangle_db.error_table()
        table[Atom("S", ("c",))] = Fraction(1, 2)
        assert triangle_db.mu(Atom("S", ("c",))) == 0


class TestPositiveOnlyModel:
    def test_positive_only_detection(self, triangle):
        positive = UnreliableDatabase(
            triangle, {Atom("E", ("a", "b")): Fraction(1, 4)}
        )
        assert positive.is_positive_only()
        negative = UnreliableDatabase(
            triangle, {Atom("E", ("a", "c")): Fraction(1, 4)}
        )
        assert not negative.is_positive_only()

    def test_uniform_error_positive_only(self, triangle):
        db = uniform_error(triangle, Fraction(1, 8), positive_only=True)
        assert db.is_positive_only()
        assert len(db.uncertain_atoms()) == 3  # only the three facts

    def test_uniform_error_full(self, triangle):
        db = uniform_error(triangle, Fraction(1, 8))
        assert len(db.uncertain_atoms()) == 12

    def test_uniform_error_selected_relations(self, triangle):
        db = uniform_error(triangle, Fraction(1, 8), relations=["S"])
        assert all(a.relation == "S" for a in db.uncertain_atoms())

    def test_uniform_error_unknown_relation(self, triangle):
        with pytest.raises(VocabularyError):
            uniform_error(triangle, Fraction(1, 8), relations=["Nope"])


class TestEvidenceConditioning:
    def test_confirming_evidence_sets_mu_zero(self, triangle_db):
        atom = Atom("E", ("a", "b"))  # observed true, mu = 1/4
        conditioned = triangle_db.given({atom: True})
        assert conditioned.mu(atom) == 0
        assert conditioned.nu(atom) == 1

    def test_contradicting_evidence_sets_mu_one(self, triangle_db):
        atom = Atom("E", ("a", "b"))
        conditioned = triangle_db.given({atom: False})
        assert conditioned.mu(atom) == 1
        assert conditioned.nu(atom) == 0

    def test_zero_probability_evidence_rejected(self, triangle_db):
        certain = Atom("E", ("b", "c"))  # mu = 0, observed true
        with pytest.raises(ProbabilityError):
            triangle_db.given({certain: False})

    def test_conditioning_matches_bayes_on_worlds(self, triangle_db):
        from repro.reliability.exact import truth_probability
        from fractions import Fraction as F

        atom = Atom("S", ("a",))
        sentence = "exists x y. E(x, y) & S(x)"
        # P[psi | S(a) actual] via Bayes over the world space.
        joint = truth_probability(
            triangle_db.given({atom: True}), sentence, method="worlds"
        )
        # Manual: P[psi & S(a)] / P[S(a)].
        from repro.reliability.space import worlds
        from repro.logic.evaluator import FOQuery

        query = FOQuery(sentence)
        num = sum(
            p
            for world, p in worlds(triangle_db)
            if world.holds(atom) and query.evaluate(world, ())
        )
        den = triangle_db.nu(atom)
        assert joint == num / den
