"""Tests for the absolute-reliability decision procedures (Lemmas 5.7-5.9)."""

from fractions import Fraction

import pytest

from repro.logic.datalog import reachability_query
from repro.logic.evaluator import FOQuery
from repro.relational.atoms import Atom
from repro.reliability.absolute import is_absolutely_reliable
from repro.reliability.exact import expected_error
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database


class TestBasics:
    def test_certain_database_is_absolutely_reliable(self, certain_db):
        assert is_absolutely_reliable(certain_db, "exists x y. E(x, y)")
        assert is_absolutely_reliable(certain_db, FOQuery("E(x, y)", ("x", "y")))

    def test_uncertainty_on_relevant_atom_breaks_it(self, triangle_db):
        assert not is_absolutely_reliable(
            triangle_db, FOQuery("E(x, y)", ("x", "y"))
        )

    def test_uncertainty_on_irrelevant_relation_is_harmless(self, triangle):
        db = UnreliableDatabase(triangle, {Atom("S", ("a",)): Fraction(1, 3)})
        assert is_absolutely_reliable(db, "exists x y. E(x, y)")

    def test_unknown_method_rejected(self, certain_db):
        with pytest.raises(QueryError):
            is_absolutely_reliable(certain_db, "exists x. S(x)", method="hm")


class TestRedundancyMakesReliable:
    def test_boolean_existential_with_certain_witness(self, triangle):
        # E(b, c) is certain, so "some edge exists" survives any flip of
        # the uncertain atom E(a, b).
        db = UnreliableDatabase(triangle, {Atom("E", ("a", "b")): Fraction(1, 4)})
        assert is_absolutely_reliable(db, "exists x y. E(x, y)")

    def test_tautological_query_always_reliable(self, triangle_db):
        assert is_absolutely_reliable(triangle_db, "exists x. S(x) | ~S(x)")

    def test_universal_with_certain_counterexample(self, triangle):
        # "forall x. S(x)" is observed false; S(c) is certainly false, so
        # no world can make the sentence true.
        db = UnreliableDatabase(triangle, {Atom("S", ("a",)): Fraction(1, 2)})
        assert is_absolutely_reliable(db, "forall x. S(x)")

    def test_universal_broken_when_counterexample_uncertain(self, triangle):
        # All three S-atoms uncertain: the all-true world flips the answer.
        db = UnreliableDatabase(
            triangle,
            {Atom("S", (v,)): Fraction(1, 2) for v in ("a", "b", "c")},
        )
        assert not is_absolutely_reliable(db, "forall x. S(x)")


class TestMethodsAgree:
    @pytest.mark.parametrize("seed", range(6))
    def test_auto_exact_witness_coincide(self, seed):
        rng = make_rng(seed)
        db = random_unreliable_database(
            rng,
            size=3,
            relations={"E": 2, "S": 1},
            density=0.4,
            error_choices=["0", "0", "1/4"],
        )
        for source, free in [
            ("exists x y. E(x, y) & S(y)", ()),
            ("forall x. exists y. E(x, y)", ()),
            ("E(x, y)", ("x", "y")),
        ]:
            query = FOQuery(source, free)
            auto = is_absolutely_reliable(db, query, "auto")
            exact = is_absolutely_reliable(db, query, "exact")
            witness = is_absolutely_reliable(db, query, "witness")
            assert auto == exact == witness, (seed, source)

    @pytest.mark.parametrize("seed", range(3))
    def test_agrees_with_zero_expected_error(self, seed):
        rng = make_rng(100 + seed)
        db = random_unreliable_database(
            rng,
            size=3,
            relations={"E": 2, "S": 1},
            density=0.5,
            error_choices=["0", "1/3"],
            uncertain_fraction=0.3,
        )
        query = FOQuery("exists x y. E(x, y) & S(y)")
        assert is_absolutely_reliable(db, query) == (
            expected_error(db, query) == 0
        )

    def test_datalog_query_witness_path(self, triangle):
        db = UnreliableDatabase(triangle, {Atom("E", ("a", "c")): Fraction(1, 8)})
        # Reach answers change when E(a, c) materialises? No: a reaches c
        # already via b, and no pair is broken by adding an edge... but
        # adding E(a, c) does not change reachability, so AR holds.
        assert is_absolutely_reliable(db, reachability_query())
        # Whereas uncertainty on a bridge edge breaks it.
        db2 = UnreliableDatabase(triangle, {Atom("E", ("b", "c")): Fraction(1, 8)})
        assert not is_absolutely_reliable(db2, reachability_query())
