"""Tests for probabilistic answer relations."""

from fractions import Fraction

import pytest

from repro.logic.datalog import reachability_query
from repro.logic.evaluator import FOQuery
from repro.reliability.answers import (
    answer_probabilities,
    estimate_answer_probabilities,
    reliability_from_answers,
)
from repro.reliability.exact import reliability, truth_probability
from repro.util.errors import QueryError
from repro.util.rng import make_rng


class TestAnswerProbabilities:
    def test_covers_all_candidate_tuples(self, triangle_db):
        query = FOQuery("E(x, y)", ("x", "y"))
        table = answer_probabilities(triangle_db, query)
        assert len(table) == 9

    def test_values_match_per_tuple_truth_probability(self, triangle_db):
        query = FOQuery("E(x, y)", ("x", "y"))
        table = answer_probabilities(triangle_db, query)
        assert table[("a", "b")] == Fraction(3, 4)
        assert table[("a", "c")] == Fraction(1, 10)
        assert table[("b", "c")] == 1
        assert table[("c", "b")] == 0

    def test_boolean_query_single_row(self, triangle_db):
        query = FOQuery("exists x. S(x) & ~E(x, x)")
        table = answer_probabilities(triangle_db, query)
        assert set(table) == {()}
        assert table[()] == truth_probability(triangle_db, query)

    def test_works_for_datalog(self, triangle_db):
        table = answer_probabilities(triangle_db, reachability_query())
        assert table[("a", "c")] > Fraction(1, 2)
        assert table[("c", "a")] < Fraction(1, 2)

    def test_reliability_recoverable(self, triangle_db):
        query = FOQuery("exists y. E(x, y) & S(y)", ("x",))
        table = answer_probabilities(triangle_db, query)
        assert reliability_from_answers(triangle_db, query, table) == (
            reliability(triangle_db, query)
        )


class TestEstimatedAnswerProbabilities:
    def test_tracks_exact_table(self, triangle_db):
        query = FOQuery("E(x, y)", ("x", "y"))
        exact = answer_probabilities(triangle_db, query)
        estimated = estimate_answer_probabilities(
            triangle_db, query, make_rng(0), samples=8000
        )
        for args, p in exact.items():
            assert abs(estimated[args] - float(p)) < 0.02, args

    def test_reliability_from_estimated_table(self, triangle_db):
        query = FOQuery("E(x, y)", ("x", "y"))
        table = estimate_answer_probabilities(
            triangle_db, query, make_rng(1), samples=8000
        )
        approx = reliability_from_answers(triangle_db, query, table)
        assert abs(approx - float(reliability(triangle_db, query))) < 0.02

    def test_empty_universe_rejected(self):
        from repro.relational.schema import Vocabulary
        from repro.relational.structure import Structure
        from repro.reliability.unreliable import UnreliableDatabase

        empty = UnreliableDatabase(Structure(Vocabulary([("S", 1)]), []))
        with pytest.raises(QueryError):
            estimate_answer_probabilities(
                empty, FOQuery("S(x)"), make_rng(2), samples=5
            )


class TestQuestionableAnswers:
    def test_ranked_by_doubt(self, triangle_db):
        from repro.reliability.answers import most_questionable_answers

        query = FOQuery("E(x, y)", ("x", "y"))
        ranked = most_questionable_answers(triangle_db, query)
        doubts = [d for _a, d, _in in ranked]
        assert doubts == sorted(doubts, reverse=True)
        # E(a, b) is an observed answer wrong with probability 1/4: top.
        assert ranked[0][0] == ("a", "b")
        assert ranked[0][1] == Fraction(1, 4)
        assert ranked[0][2] is True

    def test_certain_rows_excluded(self, certain_db):
        from repro.reliability.answers import most_questionable_answers

        query = FOQuery("E(x, y)", ("x", "y"))
        assert most_questionable_answers(certain_db, query) == []

    def test_limit(self, triangle_db):
        from repro.reliability.answers import most_questionable_answers

        query = FOQuery("E(x, y)", ("x", "y"))
        assert len(most_questionable_answers(triangle_db, query, limit=2)) == 2
