"""Tests for lifted (safe-plan) inference on hierarchical CQs."""

from fractions import Fraction

import pytest

from repro import obs
from repro.logic.conjunctive import ConjunctiveQuery
from repro.obs.recorder import StatsRecorder
from repro.obs.sink import ListSink
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.lifted import (
    UnsafeQueryError,
    has_self_join,
    is_hierarchical,
    is_safe,
    is_uniform_half,
    lifted_probability,
    lifted_reliability,
    uniform_reliability,
)
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database


def cq(text):
    return ConjunctiveQuery.from_text(text)


class TestSafetyTests:
    def test_hierarchical_examples(self):
        assert is_hierarchical(cq("exists x y. R(x) & S(x, y)"))
        assert is_hierarchical(cq("exists x. R(x) & T(x)"))
        assert is_hierarchical(cq("exists x y. S(x, y)"))

    def test_classic_non_hierarchical(self):
        # H0 = exists x y. R(x) & S(x, y) & T(y) — the hard pattern.
        assert not is_hierarchical(cq("exists x y. R(x) & S(x, y) & T(y)"))

    def test_self_join_detection(self):
        assert has_self_join(cq("exists x y. R(x) & R(y)"))
        assert not has_self_join(cq("exists x y. R(x) & S(y)"))

    def test_is_safe_combines_both(self):
        assert is_safe(cq("exists x y. R(x) & S(x, y)"))
        assert not is_safe(cq("exists x y. R(x) & S(x, y) & T(y)"))
        assert not is_safe(cq("exists x y. R(x) & R(y)"))

    def test_duplicate_atom_is_not_a_self_join(self):
        # Identical atoms are deduplicated, not a true self-join.
        assert not has_self_join(cq("exists x. R(x) & R(x)"))


class TestLiftedProbability:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "text",
        [
            "exists x. R(x)",
            "exists x y. S(x, y)",
            "exists x y. R(x) & S(x, y)",
            "exists x. R(x) & T(x)",
            "exists x y. R(x) & S(x, y) & T(x)",
        ],
    )
    def test_agrees_with_exact_engine(self, seed, text):
        db = random_unreliable_database(
            make_rng(seed),
            size=3,
            relations={"R": 1, "S": 2, "T": 1},
            density=0.4,
            error_choices=["1/4", "1/3", "0"],
        )
        query = cq(text)
        lifted = lifted_probability(db, query)
        exact = truth_probability(db, query.to_formula(), method="worlds")
        assert lifted == exact, text

    def test_reliability_agrees(self):
        db = random_unreliable_database(
            make_rng(11),
            size=3,
            relations={"R": 1, "S": 2},
            density=0.5,
            error_choices=["1/5", "1/2"],
        )
        query = cq("exists x y. R(x) & S(x, y)")
        assert lifted_reliability(db, query) == reliability(
            db, query.to_formula()
        )

    def test_unsafe_query_raises(self):
        db = random_unreliable_database(
            make_rng(0), size=2, relations={"R": 1, "S": 2, "T": 1}
        )
        with pytest.raises(UnsafeQueryError):
            lifted_probability(db, cq("exists x y. R(x) & S(x, y) & T(y)"))

    def test_self_join_raises(self):
        db = random_unreliable_database(make_rng(0), size=2, relations={"R": 1})
        with pytest.raises(UnsafeQueryError):
            lifted_probability(db, cq("exists x y. R(x) & R(y)"))

    def test_equality_atom_raises(self):
        db = random_unreliable_database(make_rng(0), size=2, relations={"R": 1})
        with pytest.raises(UnsafeQueryError):
            lifted_probability(db, cq("exists x y. R(x) & x = y"))

    def test_non_boolean_rejected(self):
        db = random_unreliable_database(make_rng(0), size=2, relations={"R": 1})
        from repro.util.errors import QueryError

        query = ConjunctiveQuery.from_text("R(x)", head=("x",))
        with pytest.raises(QueryError):
            lifted_probability(db, query)

    def test_scales_past_grounded_world_enumeration(self):
        # 5 + 25 + 5 = 35 uncertain atoms, yet polynomial via the plan.
        db = random_unreliable_database(
            make_rng(7),
            size=5,
            relations={"R": 1, "S": 2, "T": 1},
            density=0.4,
            error="1/6",
        )
        assert len(db.uncertain_atoms()) == 35
        query = cq("exists x y. R(x) & S(x, y) & T(x)")
        value = lifted_probability(db, query)
        # Cross-check against the grounded-DNF engine (feasible here).
        exact = truth_probability(db, query.to_formula(), method="dnf")
        assert value == exact

    def test_ground_atoms_factored(self, triangle_db):
        query = ConjunctiveQuery.from_text("exists x. E('a', 'b') & S(x)")
        lifted = lifted_probability(triangle_db, query)
        exact = truth_probability(
            triangle_db, query.to_formula(), method="worlds"
        )
        assert lifted == exact


def uniform_db(seed, size, relations, density=0.5):
    """A database whose every atom is uncertain with mu = 1/2."""
    return random_unreliable_database(
        make_rng(seed), size=size, relations=relations, error="1/2"
    )


class TestUniformFastPath:
    """The Amarilli-Kimelfeld all-1/2 regime (uniform reliability)."""

    def test_is_uniform_half_detection(self):
        assert is_uniform_half(uniform_db(0, 3, {"R": 1, "S": 2}))
        assert not is_uniform_half(
            random_unreliable_database(
                make_rng(0), size=3, relations={"R": 1}, error="1/3"
            )
        )
        # One off-uniform entry breaks the regime.
        mixed = random_unreliable_database(
            make_rng(1),
            size=3,
            relations={"R": 1, "S": 2},
            error_choices=["1/2", "1/4"],
        )
        table = mixed.error_table()
        assert is_uniform_half(mixed) == all(
            value == Fraction(1, 2) for value in table.values()
        )

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize(
        "text",
        [
            "exists x. R(x)",
            "exists x y. R(x) & S(x, y)",
            "exists x y. R(x) & S(x, y) & T(x)",
        ],
    )
    def test_fast_path_is_bit_identical_to_exact(self, seed, text):
        db = uniform_db(seed, 3, {"R": 1, "S": 2, "T": 1})
        query = cq(text)
        with obs.use(StatsRecorder(sink=ListSink())) as recorder:
            value = lifted_probability(db, query)
            counters = recorder.summary()["counters"]
        assert counters["lifted.uniform_fast_path"] == 1
        exact = truth_probability(db, query.to_formula(), method="dnf")
        assert isinstance(value, Fraction)
        assert value == exact

    def test_fast_path_scales_past_world_enumeration(self):
        # 6 + 36 + 6 = 48 uncertain all-1/2 atoms: worlds enumeration is
        # 2^48, yet the symbolic recursion answers instantly.
        db = uniform_db(9, 6, {"R": 1, "S": 2, "T": 1})
        assert len(db.uncertain_atoms()) == 48
        value = uniform_reliability(db, cq("exists x y. R(x) & S(x, y) & T(x)"))
        assert 0 < value < 1

    def test_uniform_reliability_rejects_off_uniform_tables(self):
        db = random_unreliable_database(
            make_rng(0), size=2, relations={"R": 1}, error="1/3"
        )
        with pytest.raises(QueryError):
            uniform_reliability(db, cq("exists x. R(x)"))

    def test_uniform_entry_still_enforces_safety(self):
        db = uniform_db(0, 2, {"R": 1, "S": 2, "T": 1})
        with pytest.raises(UnsafeQueryError):
            uniform_reliability(db, cq("exists x y. R(x) & S(x, y) & T(y)"))


class TestVerdictOnError:
    def test_unsafe_error_carries_the_dichotomy_verdict(self):
        db = random_unreliable_database(
            make_rng(0), size=2, relations={"R": 1, "S": 2, "T": 1}
        )
        with pytest.raises(UnsafeQueryError) as exc_info:
            lifted_probability(db, cq("exists x y. R(x) & S(x, y) & T(y)"))
        verdict = exc_info.value.verdict
        assert verdict is not None
        assert verdict.reason == "non_hierarchical" and verdict.hard
        atoms_x, atoms_y = (set(s) for s in verdict.occurrences)
        assert atoms_x & atoms_y
        assert not (atoms_x <= atoms_y or atoms_y <= atoms_x)
