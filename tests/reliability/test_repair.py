"""Tests for verification planning (verify-and-correct)."""

from fractions import Fraction

import pytest

from repro.logic.evaluator import FOQuery
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.exact import truth_probability, wrong_probability
from repro.reliability.repair import (
    expected_post_verification_wrong,
    greedy_verification_plan,
    plan_total_gain,
    verification_gain,
    verify_and_correct,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database


@pytest.fixture
def flags_db():
    builder = StructureBuilder(["a", "b", "c"])
    builder.relation("P", 1)
    builder.add("P", ("a",))
    return UnreliableDatabase(
        builder.build(),
        {
            Atom("P", ("a",)): Fraction(1, 4),
            Atom("P", ("b",)): Fraction(1, 3),
            Atom("P", ("c",)): Fraction(1, 10),
        },
    )


class TestVerifyAndCorrect:
    def test_correction_updates_structure_and_mu(self, flags_db):
        atom = Atom("P", ("b",))  # observed false
        fixed = verify_and_correct(flags_db, atom, True)
        assert fixed.structure.holds(atom)
        assert fixed.mu(atom) == 0
        # Original untouched.
        assert not flags_db.structure.holds(atom)

    def test_confirmation_keeps_structure(self, flags_db):
        atom = Atom("P", ("a",))
        fixed = verify_and_correct(flags_db, atom, True)
        assert fixed.structure == flags_db.structure
        assert fixed.mu(atom) == 0


class TestExpectedPostVerification:
    def test_law_of_total_probability_when_answer_stable(self, flags_db):
        # Verifying P(c) never flips the observed answer of exists x.P(x)
        # (P(a) observed true stays); expectation equals current wrong.
        query = "exists x. P(x)"
        atom = Atom("P", ("c",))
        assert expected_post_verification_wrong(flags_db, query, atom) == (
            wrong_probability(flags_db, query)
        )

    def test_answer_flipping_atom_has_positive_gain(self, flags_db):
        # Verifying P(a) (the only observed witness) lets the corrected
        # database flip its answer to match the majority in the false
        # branch: strictly positive gain.
        gain = verification_gain(flags_db, "exists x. P(x)", Atom("P", ("a",)))
        assert gain > 0
        # Exact value: before = 3/20; after = 3/4 * 0 + 1/4 * (2/5).
        assert wrong_probability(flags_db, "exists x. P(x)") == Fraction(3, 20)
        assert gain == Fraction(3, 20) - Fraction(1, 10)

    def test_gain_can_be_negative(self):
        # The documented finding: correcting one atom can move the
        # recomputed answer away from the majority.
        db = random_unreliable_database(
            make_rng(9),
            3,
            {"E": 2, "S": 1},
            density=0.4,
            error_choices=["1/4", "1/3", "0"],
        )
        gain = verification_gain(db, "exists x. ~S(x)", Atom("S", (0,)))
        assert gain < 0

    def test_branch_decomposition(self, flags_db):
        query = "exists x. P(x)"
        atom = Atom("P", ("a",))
        nu = flags_db.nu(atom)
        manual = nu * wrong_probability(
            verify_and_correct(flags_db, atom, True), query
        ) + (1 - nu) * wrong_probability(
            verify_and_correct(flags_db, atom, False), query
        )
        assert expected_post_verification_wrong(flags_db, query, atom) == manual

    def test_non_boolean_rejected(self, flags_db):
        with pytest.raises(QueryError):
            verification_gain(flags_db, FOQuery("P(x)"), Atom("P", ("a",)))


class TestGreedyPlan:
    def test_plan_respects_budget(self, flags_db):
        plan = greedy_verification_plan(flags_db, "exists x. P(x)", budget=2)
        assert len(plan) <= 2

    def test_only_positive_gains_scheduled(self, flags_db):
        plan = greedy_verification_plan(flags_db, "exists x. P(x)", budget=5)
        assert all(gain > 0 for _atom, gain in plan)

    def test_first_pick_is_single_best(self, flags_db):
        query = "exists x. P(x)"
        plan = greedy_verification_plan(flags_db, query, budget=1)
        assert len(plan) == 1
        _best_atom, best_gain = plan[0]
        for atom in flags_db.uncertain_atoms():
            assert verification_gain(flags_db, query, atom) <= best_gain

    def test_stops_when_no_gain(self, certain_db):
        plan = greedy_verification_plan(
            certain_db, "exists x y. E(x, y)", budget=5
        )
        assert plan == []

    def test_candidate_restriction(self, flags_db):
        only_a = [Atom("P", ("a",))]
        plan = greedy_verification_plan(
            flags_db, "exists x. P(x)", budget=3, candidates=only_a
        )
        assert [atom for atom, _g in plan] == only_a

    def test_negative_budget_rejected(self, flags_db):
        with pytest.raises(QueryError):
            greedy_verification_plan(flags_db, "exists x. P(x)", budget=-1)

    def test_plan_total_gain_sums(self, flags_db):
        plan = greedy_verification_plan(flags_db, "exists x. P(x)", budget=3)
        assert plan_total_gain(plan) == sum(
            (gain for _a, gain in plan), Fraction(0)
        )
