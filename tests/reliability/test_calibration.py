"""Tests for audit-based error-model calibration."""

from fractions import Fraction

import pytest

from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.calibration import (
    AuditRecord,
    calibrate_error_rates,
    calibrated_database,
)
from repro.util.errors import ProbabilityError


@pytest.fixture
def registry():
    builder = StructureBuilder(["a", "b", "c", "d"])
    builder.relation("F", 1)
    builder.add("F", ("a",)).add("F", ("b",))
    return builder.build()


class TestCalibrateRates:
    def test_mle(self, registry):
        audits = [
            AuditRecord(Atom("F", ("a",)), True),   # correct
            AuditRecord(Atom("F", ("b",)), False),  # observed true, wrong
            AuditRecord(Atom("F", ("c",)), False),  # correct
            AuditRecord(Atom("F", ("d",)), True),   # observed false, wrong
        ]
        rates = calibrate_error_rates(registry, audits, smoothing=False)
        assert rates["F"].audited == 4
        assert rates["F"].wrong == 2
        assert rates["F"].rate == Fraction(1, 2)

    def test_laplace_smoothing(self, registry):
        audits = [AuditRecord(Atom("F", ("a",)), True)]
        rates = calibrate_error_rates(registry, audits)
        # 0 wrong of 1 audited -> (0 + 1) / (1 + 2).
        assert rates["F"].rate == Fraction(1, 3)

    def test_smoothing_never_degenerate(self, registry):
        audits = [
            AuditRecord(Atom("F", ("a",)), False),
            AuditRecord(Atom("F", ("b",)), False),
        ]
        rates = calibrate_error_rates(registry, audits)
        assert 0 < rates["F"].rate < 1

    def test_duplicate_audit_rejected(self, registry):
        audits = [
            AuditRecord(Atom("F", ("a",)), True),
            AuditRecord(Atom("F", ("a",)), False),
        ]
        with pytest.raises(ProbabilityError):
            calibrate_error_rates(registry, audits)

    def test_unknown_relation_rejected(self, registry):
        from repro.util.errors import VocabularyError

        with pytest.raises(VocabularyError):
            calibrate_error_rates(
                registry, [AuditRecord(Atom("Q", ("a",)), True)]
            )


class TestCalibratedDatabase:
    def test_audited_atoms_pinned_and_corrected(self, registry):
        audits = [
            AuditRecord(Atom("F", ("b",)), False),  # observation was wrong
            AuditRecord(Atom("F", ("c",)), False),
        ]
        db = calibrated_database(registry, audits)
        # Corrected: F(b) now false in the observed structure.
        assert not db.structure.holds(Atom("F", ("b",)))
        assert db.mu(Atom("F", ("b",))) == 0
        assert db.mu(Atom("F", ("c",))) == 0

    def test_unaudited_atoms_get_estimated_rate(self, registry):
        audits = [
            AuditRecord(Atom("F", ("b",)), False),
            AuditRecord(Atom("F", ("c",)), False),
        ]
        db = calibrated_database(registry, audits)
        # 1 wrong of 2 audited, smoothed: (1+1)/(2+2) = 1/2.
        assert db.mu(Atom("F", ("a",))) == Fraction(1, 2)
        assert db.mu(Atom("F", ("d",))) == Fraction(1, 2)

    def test_default_rate_for_unaudited_relation(self):
        builder = StructureBuilder(["a"])
        builder.relation("F", 1).relation("G", 1)
        structure = builder.build()
        audits = [AuditRecord(Atom("F", ("a",)), False)]
        db = calibrated_database(
            structure, audits, default_rate=Fraction(1, 8)
        )
        assert db.mu(Atom("G", ("a",))) == Fraction(1, 8)

    def test_missing_default_raises(self):
        builder = StructureBuilder(["a"])
        builder.relation("F", 1).relation("G", 1)
        structure = builder.build()
        audits = [AuditRecord(Atom("F", ("a",)), False)]
        with pytest.raises(ProbabilityError):
            calibrated_database(structure, audits)

    def test_scope_restriction(self):
        builder = StructureBuilder(["a"])
        builder.relation("F", 1).relation("G", 1)
        structure = builder.build()
        audits = [AuditRecord(Atom("F", ("a",)), False)]
        db = calibrated_database(structure, audits, relations=["F"])
        # G is out of scope: certain by default.
        assert db.mu(Atom("G", ("a",))) == 0

    def test_calibrated_db_usable_end_to_end(self, registry):
        from repro import reliability

        audits = [
            AuditRecord(Atom("F", ("a",)), True),
            AuditRecord(Atom("F", ("d",)), False),
        ]
        db = calibrated_database(registry, audits)
        value = reliability(db, "exists x. F(x)")
        assert value == 1  # F(a) verified true: the answer is certain
