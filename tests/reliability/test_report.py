"""Tests for the analyze() dispatcher and its report."""

from fractions import Fraction

import pytest

from repro.logic.datalog import reachability_query
from repro.logic.evaluator import FOQuery
from repro.reliability.exact import reliability
from repro.reliability.report import analyze
from repro.util.errors import QueryError
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database


class TestDispatch:
    def test_quantifier_free_goes_exact(self, triangle_db):
        report = analyze(triangle_db, FOQuery("E(x, y)", ("x", "y")))
        assert report.fragment == "quantifier-free"
        assert "Prop 3.1" in report.engine
        assert report.is_exact
        assert report.exact == reliability(triangle_db, FOQuery("E(x, y)", ("x", "y")))

    def test_safe_cq_goes_lifted(self):
        db = random_unreliable_database(
            make_rng(1), 3, {"R": 1, "S": 2}, density=0.5, error="1/4"
        )
        report = analyze(db, "exists x y. R(x) & S(x, y)")
        assert report.fragment == "conjunctive"
        assert "lifted" in report.engine
        assert report.is_exact

    def test_small_existential_goes_grounded(self, triangle_db):
        report = analyze(triangle_db, "exists x y. E(x, y) & S(y) | ~S(x)")
        assert "grounded-DNF" in report.engine
        assert report.is_exact

    def test_large_existential_goes_karp_luby(self):
        db = random_unreliable_database(
            make_rng(2), 8, {"R": 1, "S": 2, "T": 1}, density=0.3, error="1/8"
        )
        # Non-hierarchical, so the lifted fast path refuses; 72+ atoms
        # push past the grounding limit.
        report = analyze(
            db,
            "exists x y. R(x) & S(x, y) & T(y)",
            rng=make_rng(3),
            epsilon=0.25,
            delta=0.25,
        )
        assert "Karp-Luby" in report.engine
        assert not report.is_exact
        assert report.samples > 0

    def test_small_alternating_goes_worlds(self, triangle_db):
        report = analyze(triangle_db, "forall x. exists y. E(x, y)")
        assert "world-enumeration" in report.engine
        assert report.is_exact

    def test_large_opaque_goes_padding(self):
        db = random_unreliable_database(
            make_rng(4), 6, {"E": 2}, density=0.3, error="1/10"
        )
        report = analyze(
            db, _BooleanReach(), rng=make_rng(5), epsilon=0.3, delta=0.3
        )
        assert "xi-padding" in report.engine
        assert 0.0 <= report.value <= 1.0

    def test_estimation_requires_rng(self):
        db = random_unreliable_database(
            make_rng(6), 6, {"E": 2}, density=0.3, error="1/10"
        )
        with pytest.raises(QueryError):
            analyze(db, reachability_query())


class _BooleanReach:
    """Boolean wrapper: node 0 reaches node 5 (opaque PTIME query)."""

    arity = 0

    def evaluate(self, structure, args=()):
        return reachability_query().evaluate(structure, (0, 5))

    def answers(self, structure):
        return {()} if self.evaluate(structure) else set()


class TestReportContents:
    def test_absolute_flag_on_exact_paths(self, certain_db):
        report = analyze(certain_db, "exists x y. E(x, y)")
        assert report.absolutely_reliable is True

    def test_fragile_atoms_listed(self, triangle_db):
        report = analyze(triangle_db, "exists x y. E(x, y) & S(y)")
        assert report.fragile_atoms
        scores = [s for _a, s in report.fragile_atoms]
        assert scores == sorted(scores, reverse=True)

    def test_render_mentions_engine_and_value(self, triangle_db):
        report = analyze(triangle_db, FOQuery("E(x, y)", ("x", "y")))
        text = report.render()
        assert "Prop 3.1" in text
        assert "reliability" in text

    def test_render_estimate_shows_guarantee(self):
        db = random_unreliable_database(
            make_rng(7), 6, {"E": 2}, density=0.3, error="1/10"
        )
        report = analyze(
            db, _BooleanReach(), rng=make_rng(8), epsilon=0.3, delta=0.3
        )
        assert "+/-" in report.render()
