"""Tests for atom-influence analysis."""

from fractions import Fraction

import pytest

from repro.logic.evaluator import FOQuery
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.exact import truth_probability
from repro.reliability.influence import (
    atom_influence,
    most_fragile_atoms,
    wrong_probability_sensitivity,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError


@pytest.fixture
def two_flag_db():
    builder = StructureBuilder(["a", "b"])
    builder.relation("P", 1)
    builder.add("P", ("a",))
    return UnreliableDatabase(
        builder.build(),
        {
            Atom("P", ("a",)): Fraction(1, 4),  # nu = 3/4
            Atom("P", ("b",)): Fraction(1, 3),  # nu = 1/3
        },
    )


class TestAtomInfluence:
    def test_disjunction_influences(self, two_flag_db):
        # psi = exists x. P(x) == P(a) | P(b).
        # I(P(a)) = 1 - nu(P(b)) = 2/3;  I(P(b)) = 1 - nu(P(a)) = 1/4.
        influences = atom_influence(two_flag_db, "exists x. P(x)")
        assert influences[Atom("P", ("a",))] == Fraction(2, 3)
        assert influences[Atom("P", ("b",))] == Fraction(1, 4)

    def test_matches_finite_difference(self, triangle_db):
        sentence = "exists x y. E(x, y) & S(y)"
        influences = atom_influence(triangle_db, sentence)
        for atom, influence in influences.items():
            base_mu = triangle_db.mu(atom)
            # Condition by forcing the atom's actual value via mu in
            # {0, 1} with the same observed structure.
            forced_true = triangle_db.with_errors(
                {atom: 0 if triangle_db.structure.holds(atom) else 1}
            )
            forced_false = triangle_db.with_errors(
                {atom: 1 if triangle_db.structure.holds(atom) else 0}
            )
            high = truth_probability(forced_true, sentence)
            low = truth_probability(forced_false, sentence)
            assert influence == high - low, atom

    def test_monotone_query_nonnegative(self, triangle_db):
        influences = atom_influence(triangle_db, "exists x y. E(x, y) & S(x)")
        assert all(v >= 0 for v in influences.values())

    def test_universal_sentence_sign_flip(self, two_flag_db):
        # forall x. P(x): raising nu of either flag raises the truth
        # probability too, so influences are positive after the internal
        # negation is unwound.
        influences = atom_influence(two_flag_db, "forall x. P(x)")
        assert influences[Atom("P", ("a",))] == Fraction(1, 3)
        assert influences[Atom("P", ("b",))] == Fraction(3, 4)

    def test_certain_sentence_no_influences(self, certain_db):
        assert atom_influence(certain_db, "exists x y. E(x, y)") == {}

    def test_alternating_query_rejected(self, triangle_db):
        with pytest.raises(QueryError):
            atom_influence(triangle_db, "forall x. exists y. E(x, y)")

    def test_non_boolean_rejected(self, triangle_db):
        with pytest.raises(QueryError):
            atom_influence(triangle_db, FOQuery("S(x)"))


class TestSensitivityAndRanking:
    def test_sensitivity_sign_tracks_observed_answer(self, two_flag_db):
        # Observed: P(a) holds, so "exists x. P(x)" is observed true;
        # increasing any nu makes Wrong less likely -> negative.
        sensitivity = wrong_probability_sensitivity(
            two_flag_db, "exists x. P(x)"
        )
        assert all(v <= 0 for v in sensitivity.values())

    def test_sensitivity_positive_when_observed_false(self, two_flag_db):
        # "forall x. P(x)" observed false (P(b) absent): more nu -> more
        # likely the actual database satisfies it -> Wrong rises.
        sensitivity = wrong_probability_sensitivity(
            two_flag_db, "forall x. P(x)"
        )
        assert all(v >= 0 for v in sensitivity.values())

    def test_most_fragile_ranking(self, two_flag_db):
        ranked = most_fragile_atoms(two_flag_db, "exists x. P(x)")
        # score(P(a)) = 2/3 * 3/4 * 1/4 = 1/8
        # score(P(b)) = 1/4 * 1/3 * 2/3 = 1/18 -> P(a) first.
        assert ranked[0][0] == Atom("P", ("a",))
        assert ranked[0][1] == Fraction(1, 8)
        assert ranked[1][1] == Fraction(1, 18)

    def test_limit_respected(self, triangle_db):
        ranked = most_fragile_atoms(
            triangle_db, "exists x y. E(x, y) & S(y)", limit=2
        )
        assert len(ranked) <= 2


class TestBDDEngine:
    def test_bdd_matches_conditioning(self, triangle_db):
        sentence = "exists x y. E(x, y) & S(y)"
        conditioning = atom_influence(triangle_db, sentence)
        bdd = atom_influence(triangle_db, sentence, engine="bdd")
        assert conditioning == bdd

    def test_bdd_universal_sign(self, two_flag_db):
        conditioning = atom_influence(two_flag_db, "forall x. P(x)")
        bdd = atom_influence(two_flag_db, "forall x. P(x)", engine="bdd")
        assert conditioning == bdd

    def test_bdd_rejects_epsilon(self, triangle_db):
        with pytest.raises(QueryError):
            atom_influence(
                triangle_db,
                "exists x. S(x)",
                epsilon=0.1,
                engine="bdd",
            )

    def test_unknown_engine_rejected(self, triangle_db):
        with pytest.raises(QueryError):
            atom_influence(triangle_db, "exists x. S(x)", engine="qm")
