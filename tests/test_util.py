"""Tests for shared utilities: rationals, rng plumbing, errors."""

from fractions import Fraction

import pytest

from repro.util.errors import (
    EvaluationError,
    ProbabilityError,
    QueryError,
    ReproError,
    VocabularyError,
)
from repro.util.rationals import (
    as_fraction,
    dyadic_approximation,
    granularity,
    parse_probability,
)
from repro.util.rng import coin, make_rng, spawn


class TestErrors:
    def test_hierarchy(self):
        for cls in (VocabularyError, QueryError, ProbabilityError, EvaluationError):
            assert issubclass(cls, ReproError)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(2, 7)
        assert as_fraction(f) is f

    def test_float_decimal_semantics(self):
        # 0.1 means one tenth, not the nearest binary double.
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_string_forms(self):
        assert as_fraction("3/8") == Fraction(3, 8)
        assert as_fraction("0.25") == Fraction(1, 4)

    def test_bad_string(self):
        with pytest.raises(ProbabilityError):
            as_fraction("not a number")

    def test_bool_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction(True)

    def test_unsupported_type(self):
        with pytest.raises(ProbabilityError):
            as_fraction(object())


class TestParseProbability:
    def test_bounds(self):
        assert parse_probability(0) == 0
        assert parse_probability(1) == 1
        with pytest.raises(ProbabilityError):
            parse_probability("-1/2")
        with pytest.raises(ProbabilityError):
            parse_probability("3/2")


class TestGranularity:
    def test_lcm_of_denominators(self):
        probs = [Fraction(1, 2), Fraction(1, 3), Fraction(5, 6)]
        assert granularity(probs) == 6

    def test_empty(self):
        assert granularity([]) == 1

    def test_integral_values(self):
        assert granularity([Fraction(1), Fraction(0)]) == 1


class TestDyadic:
    def test_rounding(self):
        assert dyadic_approximation(Fraction(1, 3), 3) == Fraction(3, 8)
        assert dyadic_approximation(Fraction(1, 2), 1) == Fraction(1, 2)

    def test_zero_bits(self):
        assert dyadic_approximation(Fraction(2, 3), 0) == 1

    def test_negative_bits_rejected(self):
        with pytest.raises(ProbabilityError):
            dyadic_approximation(Fraction(1, 2), -1)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(1).random() == make_rng(1).random()

    def test_spawn_children_decorrelated(self):
        parent = make_rng(2)
        a = spawn(parent, "a")
        parent2 = make_rng(2)
        b = spawn(parent2, "b")
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        a = spawn(make_rng(3), "x").random()
        b = spawn(make_rng(3), "x").random()
        assert a == b

    def test_coin_extremes(self):
        rng = make_rng(4)
        assert coin(rng, 1.0) is True
        assert coin(rng, 0.0) is False
